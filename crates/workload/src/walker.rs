//! Random-walk transactions (Section 5.2, "Transaction Access Pattern").
//!
//! A transaction performs a random walk through the object graph. Each
//! thread has a *home* partition; the walk starts at a random persistent
//! root (cluster root) of that partition, reached through the partition's
//! root object. At each of the `OPSPERTRANS` steps the transaction locks
//! the current object — exclusively with probability `UPDATEPROB`, shared
//! otherwise — reads its references, and moves to a random one. Update
//! accesses overwrite the payload; with `ref_update_prob` they additionally
//! rewire the object's extra edge to a node the transaction has already
//! visited (a pointer delete + insert, the traffic the TRT exists for).
//!
//! Retryable conflicts — lock timeouts, upgrade conflicts, injected
//! transient faults — abort the attempt; the logical transaction retries
//! under [`WorkloadParams::retry`], and its response time spans all
//! attempts.

use crate::graph::GraphInfo;
use crate::params::WorkloadParams;
use crate::stats::EdgeObserver;
use brahma::{Database, Error, LockMode, PhysAddr};
use rand::rngs::StdRng;
use rand::Rng;

/// Outcome of one *attempt* at a walk transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkAttempt {
    Committed,
    /// Retryable conflict (lock timeout, upgrade conflict, injected
    /// transient fault): aborted, should be retried.
    TimedOut,
}

/// Run one attempt of a walk transaction from a random cluster root of
/// `home`.
pub fn walk_once(
    db: &Database,
    info: &GraphInfo,
    home_index: usize,
    params: &WorkloadParams,
    rng: &mut StdRng,
) -> Result<WalkAttempt, Error> {
    walk_once_observed(db, info, home_index, params, rng, None)
}

/// [`walk_once`], reporting every traversed edge to `observer`.
///
/// An edge is reported when its *child* end is successfully locked and
/// read — both endpoints were co-accessed by this transaction, which is
/// the signal the clustering policy wants. The entry hop (partition root →
/// cluster root) is reported too; [`ira::StatsGreedy`] discards
/// cross-partition edges on its own.
pub fn walk_once_observed(
    db: &Database,
    info: &GraphInfo,
    home_index: usize,
    params: &WorkloadParams,
    rng: &mut StdRng,
    observer: Option<&dyn EdgeObserver>,
) -> Result<WalkAttempt, Error> {
    let mut txn = db.begin();
    let strict = db.config.strict_2pl;

    // Enter through the partition's root object (an external parent in the
    // root partition). Its address is re-read every transaction because the
    // reorganizer may migrate it.
    let roots = db.roots();
    let Some(&root_obj) = roots.get(info.root_index[home_index]) else {
        txn.abort();
        return Ok(WalkAttempt::TimedOut);
    };
    match txn.lock(root_obj, LockMode::Shared) {
        Ok(()) => {}
        Err(e) if e.is_retryable_conflict() => {
            txn.abort();
            return Ok(WalkAttempt::TimedOut);
        }
        Err(e) => return Err(e),
    }
    let cluster_roots = match txn.read_refs(root_obj) {
        Ok(r) => r,
        Err(Error::NoSuchObject(_)) => {
            txn.abort();
            return Ok(WalkAttempt::TimedOut);
        }
        Err(e) => return Err(e),
    };
    if cluster_roots.is_empty() {
        txn.abort();
        return Ok(WalkAttempt::TimedOut);
    }
    let mut current = cluster_roots[rng.gen_range(0..cluster_roots.len())];
    // The previous hop of the walk; the first traversed edge is
    // root object → cluster root.
    let mut last = root_obj;
    if !strict {
        let _ = txn.early_unlock(root_obj);
    }

    let mut visited: Vec<PhysAddr> = Vec::with_capacity(params.ops_per_trans);
    let mut prev: Option<(PhysAddr, LockMode)> = None;
    for _ in 0..params.ops_per_trans {
        let exclusive = rng.gen_bool(params.update_prob.clamp(0.0, 1.0));
        let mode = if exclusive {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        match txn.lock(current, mode) {
            Ok(()) => {}
            Err(e) if e.is_retryable_conflict() => {
                txn.abort();
                return Ok(WalkAttempt::TimedOut);
            }
            Err(e) => return Err(e),
        }
        let refs = match txn.read_refs(current) {
            Ok(r) => r,
            Err(Error::NoSuchObject(_)) => {
                // Stale address (the object migrated between our copy and
                // our lock, possible only outside strict 2PL): retry.
                txn.abort();
                return Ok(WalkAttempt::TimedOut);
            }
            Err(e) => return Err(e),
        };
        if let Some(obs) = observer {
            obs.record_edge(last, current);
        }
        last = current;
        if exclusive {
            let mut payload = vec![0u8; params.payload_size];
            rng.fill(&mut payload[..]);
            match txn.set_payload(current, &payload) {
                Ok(()) => {}
                Err(e) if e.is_retryable_conflict() => {
                    txn.abort();
                    return Ok(WalkAttempt::TimedOut);
                }
                Err(e) => return Err(e),
            }
            // Optional reference churn: repoint the extra edge (the last
            // reference) at a node already in local memory.
            if !visited.is_empty()
                && !refs.is_empty()
                && rng.gen_bool(params.ref_update_prob.clamp(0.0, 1.0))
            {
                let target = visited[rng.gen_range(0..visited.len())];
                match txn.set_ref(current, refs.len() - 1, target) {
                    Ok(_) => {}
                    Err(e) if e.is_retryable_conflict() => {
                        txn.abort();
                        return Ok(WalkAttempt::TimedOut);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        visited.push(current);
        // Release the previous hop early when not under strict 2PL (read
        // locks only; write locks are commit-duration for rollback safety).
        if !strict {
            if let Some((addr, LockMode::Shared)) = prev {
                let _ = txn.early_unlock(addr);
            }
        }
        prev = Some((current, mode));
        if refs.is_empty() {
            break;
        }
        current = refs[rng.gen_range(0..refs.len())];
    }
    // A retryable fault injected at commit (e.g. on the WAL flush) aborts
    // the attempt like any conflict; ARIES rolls the attempt back.
    match txn.commit() {
        Ok(()) => Ok(WalkAttempt::Committed),
        Err(e) if e.is_retryable_conflict() => Ok(WalkAttempt::TimedOut),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use brahma::StoreConfig;
    use rand::SeedableRng;

    fn setup(strict: bool) -> (Database, GraphInfo, WorkloadParams) {
        let config = StoreConfig {
            strict_2pl: strict,
            ..StoreConfig::default()
        };
        let db = Database::new(config);
        let params = WorkloadParams {
            num_partitions: 2,
            objs_per_partition: 170,
            ..WorkloadParams::default()
        };
        let info = build_graph(&db, &params).unwrap();
        (db, info, params)
    }

    #[test]
    fn walks_commit_on_idle_database() {
        let (db, info, params) = setup(true);
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..50 {
            let out = walk_once(&db, &info, i % 2, &params, &mut rng).unwrap();
            assert_eq!(out, WalkAttempt::Committed);
        }
        assert!(db.stats.commits.load(std::sync::atomic::Ordering::Relaxed) >= 50);
    }

    #[test]
    fn update_walks_write_payloads() {
        let (db, info, params) = setup(true);
        let params = WorkloadParams {
            update_prob: 1.0,
            ..params
        };
        let mut rng = StdRng::seed_from_u64(1);
        walk_once(&db, &info, 0, &params, &mut rng).unwrap();
        assert!(db.stats.payload_writes.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn ref_churn_keeps_database_consistent() {
        let (db, info, params) = setup(true);
        let params = WorkloadParams {
            update_prob: 1.0,
            ref_update_prob: 0.5,
            ..params
        };
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..100 {
            walk_once(&db, &info, i % 2, &params, &mut rng).unwrap();
        }
        brahma::sweep::assert_database_consistent(&db);
    }

    #[test]
    fn relaxed_mode_releases_read_locks_early() {
        let (db, info, params) = setup(false);
        let params = WorkloadParams {
            update_prob: 0.0,
            ..params
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = walk_once(&db, &info, 0, &params, &mut rng).unwrap();
        assert_eq!(out, WalkAttempt::Committed);
    }
}
