//! # Workload — the paper's Section 5.2 synthetic benchmark
//!
//! The object graph (clusters of 85 objects arranged as complete 4-ary
//! trees, one extra edge per node, `GLUEFACTOR` inter-partition references),
//! the random-walk transactions (`OPSPERTRANS` hops, `UPDATEPROB` exclusive
//! accesses), the MPL thread driver, response-time/throughput metrics, and
//! a fixed-capacity CPU model that reproduces the paper's single-CPU
//! saturation behaviour on modern many-core hosts.
//!
//! ```
//! use std::sync::Arc;
//! use brahma::{Database, StoreConfig};
//! use workload::{build_graph, start_workload, CpuModel, WorkloadParams};
//!
//! let db = Arc::new(Database::new(StoreConfig::default()));
//! let params = WorkloadParams { num_partitions: 2, objs_per_partition: 85,
//!                               mpl: 2, ..WorkloadParams::default() };
//! let info = Arc::new(build_graph(&db, &params).unwrap());
//! let handle = start_workload(Arc::clone(&db), info, &params);
//! std::thread::sleep(std::time::Duration::from_millis(50));
//! let summary = handle.stop_and_join().summarize();
//! assert!(summary.committed > 0);
//! ```

pub mod cost;
pub mod driver;
pub mod graph;
pub mod metrics;
pub mod params;
pub mod stats;
pub mod walker;

pub use cost::{CpuModel, PagedCpuModel};
pub use driver::{start_workload, start_workload_observed, WorkloadHandle};
pub use graph::{build_graph, GraphInfo};
pub use metrics::{Metrics, Summary};
pub use params::WorkloadParams;
pub use stats::{EdgeObserver, TraversalStats};
pub use walker::{walk_once, walk_once_observed, WalkAttempt};
