//! Workload parameters (Table 1 of the paper).

use brahma::RetryPolicy;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The parameters of the Section 5.2 workload, with the paper's defaults.
///
/// | Parameter        | Meaning                                   | Default |
/// |------------------|-------------------------------------------|---------|
/// | `NUMPARTITIONS`  | partitions in the database                | 10      |
/// | `NUMOBJS`        | objects per partition                     | 4080    |
/// | `MPL`            | multi programming level                   | 30      |
/// | `OPSPERTRANS`    | length of random walk per transaction     | 8       |
/// | `UPDATEPROB`     | probability of exclusive access           | 0.5     |
/// | `GLUEFACTOR`     | fraction of inter-partition references    | 0.05    |
///
/// Objects are organized into clusters of 85 objects, each cluster a tree
/// (85 = 1 + 4 + 16 + 64: a complete 4-ary tree of depth 3); the cluster
/// roots are the persistent roots. One extra edge from each node refers to a
/// node in another cluster, crossing partitions with probability
/// `GLUEFACTOR`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// NUMPARTITIONS: number of *data* partitions (the persistent roots
    /// live in one additional root partition, as in Section 2).
    pub num_partitions: usize,
    /// NUMOBJS: objects per partition (rounded down to whole clusters).
    pub objs_per_partition: usize,
    /// MPL: concurrent workload threads.
    pub mpl: usize,
    /// OPSPERTRANS: objects accessed per random walk.
    pub ops_per_trans: usize,
    /// UPDATEPROB: probability an access locks exclusively and updates.
    pub update_prob: f64,
    /// GLUEFACTOR: probability a cluster's extra edge crosses partitions.
    pub glue_factor: f64,
    /// Objects per cluster (the paper uses 85).
    pub cluster_size: usize,
    /// Payload bytes per object (the paper's average object size is about
    /// 100 bytes including bookkeeping).
    pub payload_size: usize,
    /// Probability that an update access also rewires the object's extra
    /// edge (a pointer delete + insert). The paper's measured workload
    /// updates payloads; reference churn is exercised by the correctness
    /// stress tests with this knob above zero.
    pub ref_update_prob: f64,
    /// RNG seed for graph construction and walks.
    pub seed: u64,
    /// Resubmission policy for a logical transaction whose attempt aborted
    /// on a retryable conflict (lock timeout, upgrade conflict, injected
    /// transient fault). The MPL model resubmits immediately, so the
    /// default adds no delay and a bound high enough to never give up in
    /// practice; tests tighten it to observe `retry.giveups`.
    pub retry: RetryPolicy,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            num_partitions: 10,
            objs_per_partition: 4080,
            mpl: 30,
            ops_per_trans: 8,
            update_prob: 0.5,
            glue_factor: 0.05,
            cluster_size: 85,
            payload_size: 40,
            ref_update_prob: 0.0,
            seed: 0xB_0BA,
            retry: RetryPolicy::fixed(1_000_000, Duration::ZERO),
        }
    }
}

impl WorkloadParams {
    /// A scaled-down variant for fast tests.
    pub fn tiny() -> Self {
        WorkloadParams {
            num_partitions: 3,
            objs_per_partition: 170,
            mpl: 4,
            ..WorkloadParams::default()
        }
    }

    /// Clusters per partition.
    pub fn clusters_per_partition(&self) -> usize {
        (self.objs_per_partition / self.cluster_size).max(1)
    }

    /// Objects actually materialized per partition (whole clusters).
    pub fn effective_objs_per_partition(&self) -> usize {
        self.clusters_per_partition() * self.cluster_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = WorkloadParams::default();
        assert_eq!(p.num_partitions, 10);
        assert_eq!(p.objs_per_partition, 4080);
        assert_eq!(p.mpl, 30);
        assert_eq!(p.ops_per_trans, 8);
        assert_eq!(p.update_prob, 0.5);
        assert_eq!(p.glue_factor, 0.05);
        assert_eq!(p.cluster_size, 85);
        // 4080 / 85 = 48 whole clusters.
        assert_eq!(p.clusters_per_partition(), 48);
        assert_eq!(p.effective_objs_per_partition(), 4080);
    }
}
