//! Object-graph construction (Section 5.2, "Object Graph Structure").
//!
//! The database has `NUMPARTITIONS` data partitions of `NUMOBJS` objects
//! each, organized into clusters: each cluster is a complete 4-ary tree of
//! 85 objects whose root is a persistent root. One extra edge from each node
//! refers to a node in another cluster, chosen in another partition with
//! probability `GLUEFACTOR` (these are the edges that populate the ERTs).
//!
//! The persistent roots live in a dedicated root partition (partition 0):
//! one root object per data partition holding references to that
//! partition's cluster roots — so a walk entering a data partition always
//! comes through an external parent, as the paper's PQR analysis assumes.

use crate::params::WorkloadParams;
use brahma::{Database, LockMode, NewObject, PartitionId, PhysAddr, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to the generated graph.
#[derive(Debug, Clone)]
pub struct GraphInfo {
    /// The root partition (holds the per-partition root objects).
    pub root_partition: PartitionId,
    /// The data partitions, in order.
    pub data_partitions: Vec<PartitionId>,
    /// `roots()[root_index[i]]` is the root object for `data_partitions[i]`.
    pub root_index: Vec<usize>,
    /// Cluster roots per data partition (initial addresses; they migrate).
    pub cluster_roots: Vec<Vec<PhysAddr>>,
    /// Total objects created in data partitions.
    pub total_objects: usize,
}

/// Tag values used by the generator (handy when debugging page dumps).
pub const TAG_NODE: u8 = 1;
pub const TAG_ROOT_OBJECT: u8 = 2;

/// Build the Section 5.2 object graph in `db` (which must be freshly
/// created). Returns the graph handle.
pub fn build_graph(db: &Database, params: &WorkloadParams) -> Result<GraphInfo> {
    // Generator stream off the SeedTree root, decorrelated from the walker
    // streams that share `params.seed`.
    let mut rng = StdRng::seed_from_u64(
        brahma::SeedTree::new(params.seed)
            .child("workload.graph")
            .seed(),
    );
    let root_partition = db.create_partition();
    let data_partitions: Vec<PartitionId> = (0..params.num_partitions)
        .map(|_| db.create_partition())
        .collect();

    let clusters = params.clusters_per_partition();
    let mut cluster_roots: Vec<Vec<PhysAddr>> = Vec::with_capacity(data_partitions.len());
    let mut all_nodes: Vec<Vec<PhysAddr>> = Vec::with_capacity(data_partitions.len());
    // Which cluster each node belongs to, parallel to all_nodes.
    let mut node_cluster: Vec<Vec<usize>> = Vec::with_capacity(data_partitions.len());

    for &pid in &data_partitions {
        let mut roots_here = Vec::with_capacity(clusters);
        let mut nodes_here = Vec::new();
        let mut clusters_here = Vec::new();
        for c in 0..clusters {
            let root = build_cluster(
                db,
                pid,
                params,
                &mut rng,
                &mut nodes_here,
                &mut clusters_here,
                c,
            )?;
            roots_here.push(root);
        }
        cluster_roots.push(roots_here);
        all_nodes.push(nodes_here);
        node_cluster.push(clusters_here);
    }

    // Extra edges: one per node, to a node in another cluster; the target
    // is in another partition with probability GLUEFACTOR.
    for (pi, nodes) in all_nodes.iter().enumerate() {
        let mut txn = db.begin();
        for (ni, &node) in nodes.iter().enumerate() {
            let mut tries = 0;
            let target = loop {
                let cross = rng.gen_bool(params.glue_factor.clamp(0.0, 1.0))
                    && data_partitions.len() > 1;
                let tp = if cross {
                    // Another partition.
                    let mut t = rng.gen_range(0..all_nodes.len());
                    while t == pi {
                        t = rng.gen_range(0..all_nodes.len());
                    }
                    t
                } else {
                    pi
                };
                let cand_idx = rng.gen_range(0..all_nodes[tp].len());
                // "a node in another cluster C": reject same-cluster targets
                // (unless the partition has a single cluster, where only
                // self-edges are rejected).
                tries += 1;
                if tp == pi
                    && node_cluster[tp][cand_idx] == node_cluster[pi][ni]
                    && (tries < 16 || all_nodes[tp][cand_idx] == node)
                {
                    continue;
                }
                break all_nodes[tp][cand_idx];
            };
            txn.lock(node, LockMode::Exclusive)?;
            txn.insert_ref(node, target)?;
        }
        txn.commit()?;
    }

    // Root objects: one per data partition, in the root partition.
    let mut root_index = Vec::with_capacity(data_partitions.len());
    for roots_here in &cluster_roots {
        let mut txn = db.begin();
        let root_obj = txn.create_object(
            root_partition,
            NewObject {
                tag: TAG_ROOT_OBJECT,
                refs: roots_here.clone(),
                ref_cap: roots_here.len() as u16,
                payload: Vec::new(),
                payload_cap: 0,
            },
        )?;
        txn.commit()?;
        root_index.push(db.roots().len());
        db.add_root(root_obj);
    }

    Ok(GraphInfo {
        root_partition,
        data_partitions,
        root_index,
        cluster_roots,
        total_objects: all_nodes.iter().map(|v| v.len()).sum(),
    })
}

/// Build one complete 4-ary tree of `cluster_size` objects bottom-up
/// (children are created before their parent so references exist at
/// creation time). Returns the cluster root.
fn build_cluster(
    db: &Database,
    pid: PartitionId,
    params: &WorkloadParams,
    rng: &mut StdRng,
    nodes_out: &mut Vec<PhysAddr>,
    clusters_out: &mut Vec<usize>,
    cluster_idx: usize,
) -> Result<PhysAddr> {
    // Level sizes of a complete 4-ary tree covering cluster_size nodes.
    let mut levels: Vec<usize> = Vec::new();
    let mut remaining = params.cluster_size;
    let mut width = 1;
    while remaining > 0 {
        let take = width.min(remaining);
        levels.push(take);
        remaining -= take;
        width *= 4;
    }

    let mut txn = db.begin();
    // Build bottom-up: previous level's nodes become children.
    let mut below: Vec<PhysAddr> = Vec::new();
    for &count in levels.iter().rev() {
        let mut this_level = Vec::with_capacity(count);
        for i in 0..count {
            // Distribute the level below across this level's nodes.
            let lo = below.len() * i / count;
            let hi = below.len() * (i + 1) / count;
            let children = below[lo..hi].to_vec();
            let payload: Vec<u8> = (0..params.payload_size).map(|_| rng.gen()).collect();
            let node = txn.create_object(
                pid,
                NewObject {
                    tag: TAG_NODE,
                    refs: children,
                    // Tree children (<= 4) + the extra edge + one slack slot
                    // for reference rewiring.
                    ref_cap: 6,
                    payload,
                    payload_cap: params.payload_size as u16,
                },
            )?;
            nodes_out.push(node);
            clusters_out.push(cluster_idx);
            this_level.push(node);
        }
        below = this_level;
    }
    txn.commit()?;
    debug_assert_eq!(below.len(), 1);
    Ok(below[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use brahma::StoreConfig;

    #[test]
    fn builds_the_table_1_graph() {
        let db = Database::new(StoreConfig::default());
        let params = WorkloadParams {
            num_partitions: 3,
            objs_per_partition: 255, // 3 clusters
            ..WorkloadParams::default()
        };
        let info = build_graph(&db, &params).unwrap();
        assert_eq!(info.data_partitions.len(), 3);
        assert_eq!(info.total_objects, 3 * 255);
        for &pid in &info.data_partitions {
            assert_eq!(db.partition(pid).unwrap().object_count(), 255);
        }
        // One root object per data partition.
        assert_eq!(db.roots().len(), 3);
        assert_eq!(db.partition(info.root_partition).unwrap().object_count(), 3);
        // Every node has at least the extra edge; tree roots have 4 + 1.
        let root0 = info.cluster_roots[0][0];
        let refs = db.raw_read(root0).unwrap().refs;
        assert_eq!(refs.len(), 5);
        brahma::sweep::assert_database_consistent(&db);
    }

    #[test]
    fn glue_factor_controls_cross_partition_edges() {
        let db = Database::new(StoreConfig::default());
        let params = WorkloadParams {
            num_partitions: 4,
            objs_per_partition: 170,
            glue_factor: 1.0,
            ..WorkloadParams::default()
        };
        let info = build_graph(&db, &params).unwrap();
        // With glue 1.0 every extra edge crosses partitions: each data
        // partition's ERT has one incoming edge per node elsewhere pointing
        // here, plus the root-object edges. Just check ERTs are non-trivial.
        for (i, &pid) in info.data_partitions.iter().enumerate() {
            let edges = db.partition(pid).unwrap().ert.edge_count();
            // Root object contributes cluster_roots edges.
            assert!(
                edges > info.cluster_roots[i].len(),
                "partition {pid} ERT has only {edges} edges"
            );
        }

        // With glue 0.0, ERTs hold only the root-object edges.
        let db = Database::new(StoreConfig::default());
        let params = WorkloadParams {
            num_partitions: 4,
            objs_per_partition: 170,
            glue_factor: 0.0,
            ..WorkloadParams::default()
        };
        let info = build_graph(&db, &params).unwrap();
        for (i, &pid) in info.data_partitions.iter().enumerate() {
            assert_eq!(
                db.partition(pid).unwrap().ert.edge_count(),
                info.cluster_roots[i].len()
            );
        }
    }

    #[test]
    fn whole_graph_is_reachable() {
        let db = Database::new(StoreConfig::default());
        let params = WorkloadParams {
            num_partitions: 2,
            objs_per_partition: 170,
            ..WorkloadParams::default()
        };
        let info = build_graph(&db, &params).unwrap();
        for &pid in &info.data_partitions {
            let reach = brahma::sweep::reachable_in_partition(&db, pid);
            assert_eq!(reach.len(), 170, "no garbage in a fresh graph");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let db = Database::new(StoreConfig::default());
            let params = WorkloadParams {
                num_partitions: 2,
                objs_per_partition: 85,
                seed,
                ..WorkloadParams::default()
            };
            let info = build_graph(&db, &params).unwrap();
            let mut edges = Vec::new();
            for &pid in &info.data_partitions {
                for (a, v) in brahma::sweep::sweep_objects(&db, pid) {
                    for c in v.refs {
                        edges.push((a, c));
                    }
                }
            }
            edges
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }
}
