//! A fixed-capacity CPU model.
//!
//! The paper's experiments ran on a single-CPU 167 MHz UltraSparc: with the
//! database memory-resident, "CPU gets saturated very soon", so NR/IRA
//! throughput peaks around MPL 5 and stays flat, while commit-time log
//! flushes provide just enough CPU/I-O parallelism that the peak is not at
//! MPL 1 (Section 5.3.1). A modern many-core machine would not reproduce
//! that shape — workload threads would scale until the core count.
//!
//! [`CpuModel`] reintroduces the bottleneck: each object access performs a
//! fixed amount of busy work while holding one of `capacity` CPU permits.
//! Commit flushes (simulated in the storage manager as sleeps) happen
//! outside the permits, exactly like the I/O they model.

use brahma::CpuCharge;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Fixed-capacity CPU: at most `capacity` threads compute at once.
pub struct CpuModel {
    permits: Mutex<usize>,
    cv: Condvar,
    /// Busy-work per object access.
    pub work_per_access: Duration,
}

impl CpuModel {
    /// A model with `capacity` virtual CPUs and the given per-access cost.
    pub fn new(capacity: usize, work_per_access: Duration) -> Self {
        CpuModel {
            permits: Mutex::new(capacity.max(1)),
            cv: Condvar::new(),
            work_per_access,
        }
    }

    /// The default model used by the paper-figure benches: one virtual CPU
    /// (the paper's machine was a single-CPU UltraSparc) and 100
    /// microseconds of work per access. The knee of the throughput curve
    /// still sits above MPL 1 because commit-time log flushes happen
    /// outside the CPU permit — the CPU/I-O overlap of Section 5.3.1.
    pub fn paper_default() -> Self {
        CpuModel::new(1, Duration::from_micros(40))
    }

    /// A free model (no throttling) for functional tests.
    pub fn unthrottled() -> Self {
        CpuModel::new(usize::MAX / 2, Duration::ZERO)
    }

    /// Perform one access worth of CPU work.
    pub fn access(&self) {
        if self.work_per_access.is_zero() {
            return;
        }
        {
            let mut permits = self.permits.lock();
            while *permits == 0 {
                self.cv.wait(&mut permits);
            }
            *permits -= 1;
        }
        // Occupy the virtual CPU for the access duration. Sleeping (rather
        // than spinning) keeps the *host* core free — the permit, not host
        // cycles, is what serializes the model — so the simulation also
        // behaves on single-core machines.
        std::thread::sleep(self.work_per_access);
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.cv.notify_one();
    }
}

impl CpuCharge for CpuModel {
    fn access(&self) {
        CpuModel::access(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn unthrottled_is_free() {
        let cpu = CpuModel::unthrottled();
        let t = Instant::now();
        for _ in 0..1000 {
            cpu.access();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn capacity_bounds_parallel_throughput() {
        // With capacity 1 and 4 threads doing 10 x 2ms accesses each, the
        // total must take at least 40 x 2ms.
        let cpu = Arc::new(CpuModel::new(1, Duration::from_millis(2)));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cpu = Arc::clone(&cpu);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        cpu.access();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(80));
    }
}
