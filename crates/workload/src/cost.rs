//! A fixed-capacity CPU model.
//!
//! The paper's experiments ran on a single-CPU 167 MHz UltraSparc: with the
//! database memory-resident, "CPU gets saturated very soon", so NR/IRA
//! throughput peaks around MPL 5 and stays flat, while commit-time log
//! flushes provide just enough CPU/I-O parallelism that the peak is not at
//! MPL 1 (Section 5.3.1). A modern many-core machine would not reproduce
//! that shape — workload threads would scale until the core count.
//!
//! [`CpuModel`] reintroduces the bottleneck: each object access performs a
//! fixed amount of busy work while holding one of `capacity` CPU permits.
//! Commit flushes (simulated in the storage manager as sleeps) happen
//! outside the permits, exactly like the I/O they model.
//!
//! [`PagedCpuModel`] extends the model with a page-grained buffer cache so
//! *placement* has a price: an access whose page is not among the `frames`
//! most-recently-used pages pays an extra miss penalty on a single-permit
//! "device". This is the measurement half of the clustering loop — packing
//! co-accessed objects onto fewer pages raises the hit rate, which shows
//! up directly as walker throughput. The placement-cost side of the same
//! model (how a plan is *scored* before it runs) lives in
//! [`ira::CostModel`], re-exported here so `workload::cost` is the one
//! place to look.

use brahma::{CpuCharge, PhysAddr};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use ira::{CostModel, EdgeCount, EdgeSource, PlanScore};

/// Fixed-capacity CPU: at most `capacity` threads compute at once.
pub struct CpuModel {
    permits: Mutex<usize>,
    cv: Condvar,
    /// Busy-work per object access.
    pub work_per_access: Duration,
}

impl CpuModel {
    /// A model with `capacity` virtual CPUs and the given per-access cost.
    pub fn new(capacity: usize, work_per_access: Duration) -> Self {
        CpuModel {
            permits: Mutex::new(capacity.max(1)),
            cv: Condvar::new(),
            work_per_access,
        }
    }

    /// The default model used by the paper-figure benches: one virtual CPU
    /// (the paper's machine was a single-CPU UltraSparc) and 100
    /// microseconds of work per access. The knee of the throughput curve
    /// still sits above MPL 1 because commit-time log flushes happen
    /// outside the CPU permit — the CPU/I-O overlap of Section 5.3.1.
    pub fn paper_default() -> Self {
        CpuModel::new(1, Duration::from_micros(40))
    }

    /// A free model (no throttling) for functional tests.
    pub fn unthrottled() -> Self {
        CpuModel::new(usize::MAX / 2, Duration::ZERO)
    }

    /// Perform one access worth of CPU work.
    pub fn access(&self) {
        if self.work_per_access.is_zero() {
            return;
        }
        {
            let mut permits = self.permits.lock();
            while *permits == 0 {
                self.cv.wait(&mut permits);
            }
            *permits -= 1;
        }
        // Occupy the virtual CPU for the access duration. Sleeping (rather
        // than spinning) keeps the *host* core free — the permit, not host
        // cycles, is what serializes the model — so the simulation also
        // behaves on single-core machines.
        std::thread::sleep(self.work_per_access);
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.cv.notify_one();
    }
}

impl CpuCharge for CpuModel {
    fn access(&self) {
        CpuModel::access(self);
    }
}

/// LRU over (partition, page) frames; stamp-based, O(frames) eviction —
/// frame counts here are small (tens), and the map sits behind a mutex
/// held only for the lookup, never across the modelled I/O.
struct PageLru {
    frames: HashMap<(u16, u32), u64>,
    capacity: usize,
    clock: u64,
}

impl PageLru {
    /// Touch the page; returns `true` on a hit.
    fn touch(&mut self, key: (u16, u32)) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.frames.get_mut(&key) {
            *stamp = clock;
            return true;
        }
        if self.frames.len() >= self.capacity {
            if let Some((&victim, _)) = self.frames.iter().min_by_key(|(_, &s)| s) {
                self.frames.remove(&victim);
            }
        }
        self.frames.insert(key, clock);
        false
    }
}

/// A [`CpuModel`] with a page-grained buffer cache: accesses to one of the
/// `frames` hottest pages cost only CPU work; any other page first pays a
/// miss penalty on a single-permit device, serialized like the disk arm it
/// stands in for. Wire it into the store via `StoreConfig::cpu`; the store
/// calls [`CpuCharge::access_at`] with the physical address of every
/// object access, which is what makes clustering measurable.
pub struct PagedCpuModel {
    cpu: CpuModel,
    /// Single-permit device paying the miss penalty; its `work_per_access`
    /// is the penalty, so misses serialize like real page fetches.
    device: CpuModel,
    lru: Mutex<PageLru>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PagedCpuModel {
    /// `cpu` prices the in-memory work; `frames` pages fit in the cache;
    /// `miss_penalty` is the device time for any other page.
    pub fn new(cpu: CpuModel, frames: usize, miss_penalty: Duration) -> Self {
        PagedCpuModel {
            cpu,
            device: CpuModel::new(1, miss_penalty),
            lru: Mutex::new(PageLru {
                frames: HashMap::new(),
                capacity: frames.max(1),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction over everything seen so far (1.0 when nothing seen).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            1.0
        } else {
            h / (h + m)
        }
    }

    /// Empty the cache and zero the counters — called between measurement
    /// windows so the post-reorg window starts cold, same as the first.
    pub fn reset(&self) {
        let mut lru = self.lru.lock();
        lru.frames.clear();
        lru.clock = 0;
        drop(lru);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Export cache health under `cache.*` keys (DESIGN §8).
    pub fn export(&self, snap: &mut obs::Snapshot) {
        snap.set("cache.hits", self.hits());
        snap.set("cache.misses", self.misses());
    }
}

impl CpuCharge for PagedCpuModel {
    fn access(&self) {
        // No address: CPU work only (e.g. object creation, which has no
        // page until the allocator places it).
        self.cpu.access();
    }

    fn access_at(&self, addr: PhysAddr) {
        let hit = self
            .lru
            .lock()
            .touch((addr.partition().0, addr.page()));
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.device.access();
        }
        self.cpu.access();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn unthrottled_is_free() {
        let cpu = CpuModel::unthrottled();
        let t = Instant::now();
        for _ in 0..1000 {
            cpu.access();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn paged_model_counts_hits_and_misses() {
        use brahma::PartitionId;
        let model = PagedCpuModel::new(CpuModel::unthrottled(), 2, Duration::ZERO);
        let a = PhysAddr::new(PartitionId(1), 0, 0);
        let b = PhysAddr::new(PartitionId(1), 0, 64); // same page as a
        let c = PhysAddr::new(PartitionId(1), 7, 0);
        let d = PhysAddr::new(PartitionId(2), 0, 0);
        model.access_at(a); // miss (cold)
        model.access_at(b); // hit (same frame)
        model.access_at(c); // miss
        model.access_at(a); // hit (still resident)
        model.access_at(d); // miss, evicts LRU (page of c? no — a was touched later, c older)
        model.access_at(a); // hit: a's frame was the most recent of the survivors
        assert_eq!(model.hits(), 3);
        assert_eq!(model.misses(), 3);
        assert!((model.hit_rate() - 0.5).abs() < 1e-9);
        model.reset();
        assert_eq!((model.hits(), model.misses()), (0, 0));
        model.access_at(a);
        assert_eq!(model.misses(), 1, "reset must empty the cache");
    }

    #[test]
    fn paged_model_charges_misses_on_the_device() {
        use brahma::PartitionId;
        let model = PagedCpuModel::new(
            CpuModel::unthrottled(),
            1,
            Duration::from_millis(2),
        );
        let a = PhysAddr::new(PartitionId(1), 0, 0);
        let b = PhysAddr::new(PartitionId(1), 1, 0);
        let t = Instant::now();
        for _ in 0..5 {
            model.access_at(a); // alternating pages with 1 frame: all miss
            model.access_at(b);
        }
        assert!(t.elapsed() >= Duration::from_millis(20));
        assert_eq!(model.misses(), 10);
    }

    #[test]
    fn capacity_bounds_parallel_throughput() {
        // With capacity 1 and 4 threads doing 10 x 2ms accesses each, the
        // total must take at least 40 x 2ms.
        let cpu = Arc::new(CpuModel::new(1, Duration::from_millis(2)));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cpu = Arc::clone(&cpu);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        cpu.access();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(80));
    }
}
