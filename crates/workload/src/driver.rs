//! The MPL driver (Section 5.2): `MPL` threads, each submitting the next
//! transaction as soon as the previous one completes, threads uniformly
//! assigned home partitions.

use crate::graph::GraphInfo;
use crate::metrics::{Metrics, WalkerCounts};
use crate::params::WorkloadParams;
use crate::stats::EdgeObserver;
use crate::walker::{walk_once_observed, WalkAttempt};
use brahma::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A running workload: MPL threads submitting walk transactions until
/// stopped.
pub struct WorkloadHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<Metrics>>,
    started: Instant,
}

/// Start `params.mpl` workload threads against `db`.
pub fn start_workload(
    db: Arc<Database>,
    info: Arc<GraphInfo>,
    params: &WorkloadParams,
) -> WorkloadHandle {
    start_workload_observed(db, info, params, None)
}

/// [`start_workload`], with every walker reporting traversed edges to
/// `observer` (the "observe" stage of the clustering loop).
pub fn start_workload_observed(
    db: Arc<Database>,
    info: Arc<GraphInfo>,
    params: &WorkloadParams,
    observer: Option<Arc<dyn EdgeObserver + Send + Sync>>,
) -> WorkloadHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let threads = (0..params.mpl)
        .map(|t| {
            let db = Arc::clone(&db);
            let info = Arc::clone(&info);
            let stop = Arc::clone(&stop);
            let observer = observer.clone();
            let params = params.clone();
            std::thread::Builder::new()
                .name(format!("walker-{t}"))
                .spawn(move || {
                    // Threads are uniformly assigned to home partitions.
                    let home = t % info.data_partitions.len();
                    brahma::sched::set_thread_label(&format!("walker-{t}"));
                    // Per-thread RNG stream off the SeedTree: decorrelated
                    // across threads, identical for a given (seed, t) at any
                    // MPL (the old `seed ^ t<<17` xor left low bits shared).
                    let tree = brahma::SeedTree::new(params.seed)
                        .child("workload.walker")
                        .child_idx(t as u64);
                    let mut rng = StdRng::seed_from_u64(tree.seed());
                    // Each walker's retry jitter gets its own stream too —
                    // one shared policy seed would synchronize the backoff
                    // of every thread that fails together.
                    let retry = brahma::RetryPolicy {
                        seed: tree.child("retry").seed(),
                        ..params.retry.clone()
                    };
                    let mut metrics = Metrics::default();
                    let run_start = Instant::now();
                    'run: while !stop.load(Ordering::Relaxed) {
                        // One logical transaction: retry attempts under
                        // `params.retry` until it commits; response time
                        // spans all attempts.
                        let txn_start = Instant::now();
                        let mut backoff = retry.start();
                        loop {
                            match walk_once_observed(
                                &db,
                                &info,
                                home,
                                &params,
                                &mut rng,
                                observer.as_deref().map(|o| o as &dyn EdgeObserver),
                            ) {
                                Ok(WalkAttempt::Committed) => {
                                    metrics.record_commit(txn_start.elapsed());
                                    break;
                                }
                                Ok(WalkAttempt::TimedOut) => {
                                    metrics.record_abort();
                                    if stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    if !db.retry_backoff(&mut backoff) {
                                        metrics.record_error(format!(
                                            "walker {t}: retry policy exhausted"
                                        ));
                                        break 'run;
                                    }
                                }
                                Err(e) => {
                                    // Non-retryable: record it and shut this
                                    // walker down cleanly; the rest of the
                                    // workload keeps running and the error
                                    // surfaces in the merged metrics.
                                    metrics.record_error(format!("walker {t}: {e}"));
                                    break 'run;
                                }
                            }
                        }
                    }
                    metrics.window = run_start.elapsed();
                    metrics.per_walker.push(WalkerCounts {
                        walker: t,
                        committed: metrics.response_us.len() as u64,
                        aborted_attempts: metrics.aborted_attempts,
                        errors: metrics.errors,
                    });
                    metrics
                })
                .expect("spawn walker thread")
        })
        .collect();
    WorkloadHandle {
        stop,
        threads,
        started,
    }
}

impl WorkloadHandle {
    /// Time since the workload started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Signal all threads to stop and collect their merged metrics.
    pub fn stop_and_join(self) -> Metrics {
        self.stop.store(true, Ordering::SeqCst);
        let mut merged = Metrics::default();
        for t in self.threads {
            match t.join() {
                Ok(m) => merged.merge(m),
                // A panicked walker loses its per-thread numbers but must
                // not take the whole measurement down with it.
                Err(_) => merged.record_error("walker thread panicked"),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use brahma::StoreConfig;
    use std::time::Duration;

    #[test]
    fn workload_runs_and_stops() {
        let db = Arc::new(Database::new(StoreConfig::default()));
        let params = WorkloadParams {
            num_partitions: 2,
            objs_per_partition: 170,
            mpl: 4,
            ..WorkloadParams::default()
        };
        let info = Arc::new(build_graph(&db, &params).unwrap());
        let handle = start_workload(Arc::clone(&db), info, &params);
        std::thread::sleep(Duration::from_millis(200));
        let metrics = handle.stop_and_join();
        let summary = metrics.summarize();
        assert!(summary.committed > 10, "got {summary:?}");
        assert!(summary.throughput_tps > 0.0);
        brahma::sweep::assert_database_consistent(&db);
    }

    #[test]
    fn workload_with_concurrent_reorganization_is_consistent() {
        let db = Arc::new(Database::new(StoreConfig::default()));
        let params = WorkloadParams {
            num_partitions: 3,
            objs_per_partition: 170,
            mpl: 6,
            ref_update_prob: 0.2,
            ..WorkloadParams::default()
        };
        let info = Arc::new(build_graph(&db, &params).unwrap());
        let handle = start_workload(Arc::clone(&db), Arc::clone(&info), &params);

        // Reorganize a data partition while the walkers hammer it.
        let outcome = ira::Reorg::on(&db, info.data_partitions[0])
            .run()
            .expect("IRA completes under load");
        assert_eq!(outcome.migrated(), 170);

        let metrics = handle.stop_and_join();
        assert!(metrics.summarize().committed > 0);
        brahma::sweep::assert_database_consistent(&db);
        ira::verify::assert_reorganization_clean(&db, outcome.ira().unwrap());
    }
}
