//! Lock-free traversal statistics: per-edge co-access counters.
//!
//! Walkers report every parent→child hop they take (the object they just
//! read and the reference they followed). [`TraversalStats`] accumulates
//! those hops into per-edge counters without taking a lock on the hot
//! path: the table is sharded by edge hash, each shard is a fixed array of
//! atomically-claimed slots, and counting is a single `fetch_add` once the
//! slot is found. This is the "observe" stage of the
//! observe → plan → reorganize → measure loop (DESIGN §15): the snapshot
//! feeds [`ira::StatsGreedy`] through the [`ira::EdgeSource`] trait.
//!
//! Concurrency model: a writer claims an empty slot with a CAS on the slot
//! state (`EMPTY → PUBLISHING`), writes the edge key, then releases the
//! slot (`READY`). Two threads racing to insert the *same* edge may each
//! claim a slot; the duplicate wastes a slot but no counts are lost —
//! [`TraversalStats::edges`] aggregates by key, so totals stay exact. A
//! full shard (probe limit hit) drops the sample and bumps `dropped`; for
//! planning purposes a saturated table already holds the hot edges.

use brahma::PhysAddr;
use ira::EdgeCount;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Anything walkers can report traversed edges to.
pub trait EdgeObserver: Sync {
    /// Record one traversal of the `parent → child` edge.
    fn record_edge(&self, parent: PhysAddr, child: PhysAddr);
}

const SHARDS: usize = 16;
/// Slots per shard; total capacity is `SHARDS * SLOTS_PER_SHARD` distinct
/// edges (8192 by default — the Section 5.2 graph has ~2 edges per object,
/// so this covers partitions well past the paper's 2550-object database).
const SLOTS_PER_SHARD: usize = 512;
const PROBE_LIMIT: usize = 64;

const EMPTY: u64 = 0;
const PUBLISHING: u64 = 1;
const READY: u64 = 2;

/// One edge slot. `state` gates visibility: readers only trust
/// `parent`/`child` after loading `READY` with `Acquire`.
struct Slot {
    state: AtomicU64,
    parent: AtomicU64,
    child: AtomicU64,
    count: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            state: AtomicU64::new(EMPTY),
            parent: AtomicU64::new(0),
            child: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

struct Shard {
    slots: Vec<Slot>,
}

/// Sharded lock-free co-access counters, one per workload run.
pub struct TraversalStats {
    shards: Vec<Shard>,
    /// Total edge traversals recorded (including duplicates of the same
    /// edge).
    recorded: AtomicU64,
    /// Samples dropped because a shard's probe window was full.
    dropped: AtomicU64,
}

impl Default for TraversalStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TraversalStats {
    pub fn new() -> Self {
        TraversalStats {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    slots: (0..SLOTS_PER_SHARD).map(|_| Slot::new()).collect(),
                })
                .collect(),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// FxHash-style mix of the edge key; cheap and good enough to spread
    /// page-aligned addresses across shards and probe windows.
    fn hash(parent: u64, child: u64) -> u64 {
        let mut h = parent.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ child;
        h ^= h >> 32;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 29;
        h
    }

    fn record(&self, parent: PhysAddr, child: PhysAddr) {
        let (p, c) = (parent.to_raw(), child.to_raw());
        let h = Self::hash(p, c);
        let shard = &self.shards[(h as usize) % SHARDS];
        let mask = SLOTS_PER_SHARD - 1;
        let base = (h >> 8) as usize;
        for i in 0..PROBE_LIMIT {
            let slot = &shard.slots[(base + i) & mask];
            match slot.state.load(Ordering::Acquire) {
                READY => {
                    if slot.parent.load(Ordering::Relaxed) == p
                        && slot.child.load(Ordering::Relaxed) == c
                    {
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        self.recorded.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                EMPTY => {
                    if slot
                        .state
                        .compare_exchange(EMPTY, PUBLISHING, Ordering::Acquire, Ordering::Acquire)
                        .is_ok()
                    {
                        slot.parent.store(p, Ordering::Relaxed);
                        slot.child.store(c, Ordering::Relaxed);
                        slot.count.store(1, Ordering::Relaxed);
                        slot.state.store(READY, Ordering::Release);
                        self.recorded.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Lost the claim race: someone else is publishing this
                    // slot (possibly the same edge). Re-check it once it is
                    // ready rather than skipping ahead.
                    while slot.state.load(Ordering::Acquire) == PUBLISHING {
                        std::hint::spin_loop();
                    }
                    if slot.parent.load(Ordering::Relaxed) == p
                        && slot.child.load(Ordering::Relaxed) == c
                    {
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        self.recorded.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                _ => {
                    // PUBLISHING by another thread: wait for the key, then
                    // fall through to the match check above on next probe if
                    // it isn't ours.
                    while slot.state.load(Ordering::Acquire) == PUBLISHING {
                        std::hint::spin_loop();
                    }
                    if slot.parent.load(Ordering::Relaxed) == p
                        && slot.child.load(Ordering::Relaxed) == c
                    {
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        self.recorded.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregate the table into per-edge counts, hottest first. Duplicate
    /// slots for the same edge (benign insert races) are merged here, so
    /// the returned counts are exact.
    pub fn edges(&self) -> Vec<EdgeCount> {
        let mut agg: HashMap<(u64, u64), u64> = HashMap::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                if slot.state.load(Ordering::Acquire) != READY {
                    continue;
                }
                let key = (
                    slot.parent.load(Ordering::Relaxed),
                    slot.child.load(Ordering::Relaxed),
                );
                *agg.entry(key).or_insert(0) += slot.count.load(Ordering::Relaxed);
            }
        }
        let mut edges: Vec<EdgeCount> = agg
            .into_iter()
            .map(|((p, c), count)| EdgeCount {
                parent: PhysAddr::from_raw(p),
                child: PhysAddr::from_raw(c),
                count,
            })
            .collect();
        edges.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.parent.to_raw().cmp(&b.parent.to_raw()))
                .then(a.child.to_raw().cmp(&b.child.to_raw()))
        });
        edges
    }

    /// Total traversals recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Samples dropped to full probe windows.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Export collector health under `stats.*` keys (DESIGN §8).
    pub fn export(&self, snap: &mut obs::Snapshot) {
        snap.set("stats.edges_recorded", self.recorded());
        snap.set("stats.edges_distinct", self.edges().len() as u64);
        snap.set("stats.edges_dropped", self.dropped());
    }
}

impl EdgeObserver for TraversalStats {
    fn record_edge(&self, parent: PhysAddr, child: PhysAddr) {
        self.record(parent, child);
    }
}

impl ira::EdgeSource for TraversalStats {
    fn edges(&self) -> Vec<EdgeCount> {
        TraversalStats::edges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brahma::PartitionId;
    use std::sync::Arc;

    fn a(p: u16, off: u16) -> PhysAddr {
        PhysAddr::new(PartitionId(p), 0, off)
    }

    #[test]
    fn counts_are_exact_single_thread() {
        let stats = TraversalStats::new();
        for _ in 0..10 {
            stats.record_edge(a(1, 0), a(1, 64));
        }
        stats.record_edge(a(1, 64), a(1, 128));
        let edges = stats.edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].count, 10);
        assert_eq!((edges[0].parent, edges[0].child), (a(1, 0), a(1, 64)));
        assert_eq!(edges[1].count, 1);
        assert_eq!(stats.recorded(), 11);
        assert_eq!(stats.dropped(), 0);
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let stats = Arc::new(TraversalStats::new());
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // 32 distinct edges, every thread hitting all of
                        // them: maximal insert/count contention.
                        let k = ((t + i) % 32) as u16;
                        stats.record_edge(a(1, k * 64), a(1, k * 64 + 32));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = stats.edges().iter().map(|e| e.count).sum();
        assert_eq!(total + stats.dropped(), (THREADS * PER_THREAD) as u64);
        assert_eq!(stats.dropped(), 0, "32 edges cannot fill a probe window");
        assert_eq!(stats.edges().len(), 32);
    }

    #[test]
    fn saturation_drops_instead_of_blocking() {
        let stats = TraversalStats::new();
        // Far more distinct edges than slots: some must drop, none may
        // hang, and recorded + dropped must account for every call.
        let n: u64 = 3 * (super::SHARDS * super::SLOTS_PER_SHARD) as u64;
        for i in 0..n {
            let p = PhysAddr::from_raw(i.wrapping_mul(0x1_0001) << 5);
            let c = PhysAddr::from_raw((i.wrapping_mul(0x2_0003) << 5) | 1 << 16);
            stats.record_edge(p, c);
        }
        assert!(stats.dropped() > 0);
        assert_eq!(stats.recorded() + stats.dropped(), n);
        let total: u64 = stats.edges().iter().map(|e| e.count).sum();
        assert_eq!(total, stats.recorded());
    }

    #[test]
    fn export_sets_documented_keys() {
        let stats = TraversalStats::new();
        stats.record_edge(a(1, 0), a(1, 64));
        let mut snap = obs::Snapshot::default();
        stats.export(&mut snap);
        assert_eq!(snap.get("stats.edges_recorded"), 1);
        assert_eq!(snap.get("stats.edges_distinct"), 1);
        assert_eq!(snap.get("stats.edges_dropped"), 0);
    }
}
