//! Transaction metrics: throughput, response times, abort counts.
//!
//! The paper evaluates the algorithms on throughput (tps) and average
//! response time, and Table 2 additionally reports the maximum and standard
//! deviation of response times — the variance is where PQR loses by orders
//! of magnitude. Response time is measured from a logical transaction's
//! first attempt to its commit, *including* timeout-abort retries: a
//! transaction blocked by the reorganizer keeps retrying and its response
//! time grows, exactly as in the paper's 100-second PQR maximum.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-walker outcome counts, one entry per workload thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkerCounts {
    pub walker: usize,
    pub committed: u64,
    pub aborted_attempts: u64,
    /// Non-retryable errors (at most 1: the walker shuts down on the first).
    pub errors: u64,
}

/// Raw measurements from one or more workload threads.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Response time per committed logical transaction, in microseconds.
    pub response_us: Vec<u64>,
    /// Timeout-abort attempts (each retried).
    pub aborted_attempts: u64,
    /// Non-retryable errors. A walker that hits one records it here and
    /// shuts down cleanly instead of panicking; the rest of the workload
    /// keeps running.
    pub errors: u64,
    /// Display text of the first non-retryable error observed (diagnostics).
    pub first_error: Option<String>,
    /// Per-walker breakdown (one entry per thread after a merge).
    pub per_walker: Vec<WalkerCounts>,
    /// Wall-clock measurement window.
    pub window: Duration,
}

impl Metrics {
    /// Merge measurements from another thread.
    pub fn merge(&mut self, other: Metrics) {
        self.response_us.extend(other.response_us);
        self.aborted_attempts += other.aborted_attempts;
        self.errors += other.errors;
        if self.first_error.is_none() {
            self.first_error = other.first_error;
        }
        self.per_walker.extend(other.per_walker);
        self.window = self.window.max(other.window);
    }

    /// Record one committed transaction.
    pub fn record_commit(&mut self, response: Duration) {
        self.response_us.push(response.as_micros() as u64);
    }

    /// Record one timed-out attempt.
    pub fn record_abort(&mut self) {
        self.aborted_attempts += 1;
    }

    /// Record a non-retryable error (the walker stops after this).
    pub fn record_error(&mut self, error: impl std::fmt::Display) {
        self.errors += 1;
        if self.first_error.is_none() {
            self.first_error = Some(error.to_string());
        }
    }

    /// Export aggregate counts into `snap` under `workload.*` keys.
    pub fn export(&self, snap: &mut obs::Snapshot) {
        snap.set("workload.committed", self.response_us.len() as u64);
        snap.set("workload.aborted_attempts", self.aborted_attempts);
        snap.set("workload.errors", self.errors);
        snap.set("workload.walkers", self.per_walker.len() as u64);
    }

    /// Summarize into the paper's reporting metrics.
    pub fn summarize(&self) -> Summary {
        let n = self.response_us.len();
        let window_s = self.window.as_secs_f64();
        let throughput = if window_s > 0.0 { n as f64 / window_s } else { 0.0 };
        let mean_us = if n > 0 {
            self.response_us.iter().sum::<u64>() as f64 / n as f64
        } else {
            0.0
        };
        let var_us2 = if n > 1 {
            self.response_us
                .iter()
                .map(|&x| {
                    let d = x as f64 - mean_us;
                    d * d
                })
                .sum::<f64>()
                / n as f64
        } else {
            0.0
        };
        let mut sorted = self.response_us.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> f64 {
            if sorted.is_empty() {
                0.0
            } else {
                let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
                sorted[idx] as f64 / 1000.0
            }
        };
        Summary {
            committed: n as u64,
            aborted_attempts: self.aborted_attempts,
            errors: self.errors,
            throughput_tps: throughput,
            avg_ms: mean_us / 1000.0,
            max_ms: sorted.last().copied().unwrap_or(0) as f64 / 1000.0,
            stddev_ms: var_us2.sqrt() / 1000.0,
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            window_s,
        }
    }
}

/// The paper's reporting metrics for one experiment cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub committed: u64,
    pub aborted_attempts: u64,
    /// Non-retryable walker errors (0 in a healthy run).
    pub errors: u64,
    /// Throughput in transactions per second (Figures 6, 8, 10).
    pub throughput_tps: f64,
    /// Average response time in milliseconds (Figures 7, 9, 11).
    pub avg_ms: f64,
    /// Maximum response time (Table 2).
    pub max_ms: f64,
    /// Standard deviation of response times (Table 2).
    pub stddev_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub window_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_metrics() {
        let s = Metrics::default().summarize();
        assert_eq!(s.committed, 0);
        assert_eq!(s.throughput_tps, 0.0);
        assert_eq!(s.avg_ms, 0.0);
        assert_eq!(s.max_ms, 0.0);
    }

    #[test]
    fn summary_statistics() {
        let mut m = Metrics {
            window: Duration::from_secs(2),
            ..Metrics::default()
        };
        for ms in [10u64, 20, 30, 40] {
            m.record_commit(Duration::from_millis(ms));
        }
        m.record_abort();
        let s = m.summarize();
        assert_eq!(s.committed, 4);
        assert_eq!(s.aborted_attempts, 1);
        assert!((s.throughput_tps - 2.0).abs() < 1e-9);
        assert!((s.avg_ms - 25.0).abs() < 1e-9);
        assert!((s.max_ms - 40.0).abs() < 1e-9);
        // Population stddev of {10,20,30,40} = sqrt(125) ~ 11.18.
        assert!((s.stddev_ms - 125f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut m = Metrics {
            window: Duration::from_secs(1),
            ..Metrics::default()
        };
        for ms in 1..=100u64 {
            m.record_commit(Duration::from_millis(ms));
        }
        let s = m.summarize();
        assert!(s.avg_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
        assert!((s.p95_ms - 95.0).abs() <= 1.5);
        assert!((s.max_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn errors_are_counted_and_first_is_kept() {
        let mut m = Metrics::default();
        m.record_error("first failure");
        m.record_error("second failure");
        assert_eq!(m.errors, 2);
        assert_eq!(m.first_error.as_deref(), Some("first failure"));
        let s = m.summarize();
        assert_eq!(s.errors, 2);
        // No commits and a zero window must not divide by zero.
        assert_eq!(s.throughput_tps, 0.0);
        assert_eq!(s.avg_ms, 0.0);
        assert_eq!(s.stddev_ms, 0.0);
    }

    #[test]
    fn export_emits_workload_keys() {
        let mut m = Metrics {
            window: Duration::from_secs(1),
            ..Metrics::default()
        };
        m.record_commit(Duration::from_millis(5));
        m.record_abort();
        m.per_walker.push(WalkerCounts {
            walker: 0,
            committed: 1,
            aborted_attempts: 1,
            errors: 0,
        });
        let mut snap = obs::Snapshot::new();
        m.export(&mut snap);
        assert_eq!(snap.get("workload.committed"), 1);
        assert_eq!(snap.get("workload.aborted_attempts"), 1);
        assert_eq!(snap.get("workload.errors"), 0);
        assert_eq!(snap.get("workload.walkers"), 1);
    }

    #[test]
    fn merge_combines_threads() {
        let mut a = Metrics {
            window: Duration::from_secs(1),
            ..Metrics::default()
        };
        a.record_commit(Duration::from_millis(5));
        let mut b = Metrics {
            window: Duration::from_secs(3),
            ..Metrics::default()
        };
        b.record_commit(Duration::from_millis(15));
        b.record_abort();
        a.merge(b);
        assert_eq!(a.response_us.len(), 2);
        assert_eq!(a.aborted_attempts, 1);
        assert_eq!(a.window, Duration::from_secs(3));
    }
}
