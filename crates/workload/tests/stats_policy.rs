//! Closed-loop tests for the observe → plan stages: the collector's counts
//! are exact, and the greedy policy's plan scores better than leaving
//! objects where they are.

use brahma::{Database, NewObject, PhysAddr, StoreConfig};
use ira::{EdgeCount, MigrationOrder, PlanSource, StatsGreedy};
use parking_lot::Mutex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use workload::stats::{EdgeObserver, TraversalStats};
use workload::{build_graph, walk_once_observed, WorkloadParams};

/// Ground-truth observer: every reported edge, verbatim, under a lock.
#[derive(Default)]
struct VecSink {
    edges: Mutex<Vec<(u64, u64)>>,
}

impl EdgeObserver for VecSink {
    fn record_edge(&self, parent: PhysAddr, child: PhysAddr) {
        self.edges.lock().push((parent.to_raw(), child.to_raw()));
    }
}

/// Forward to both observers, so one walker run produces the lock-free
/// counters and the ground truth simultaneously.
struct Tee<'a>(&'a TraversalStats, &'a VecSink);

impl EdgeObserver for Tee<'_> {
    fn record_edge(&self, parent: PhysAddr, child: PhysAddr) {
        self.0.record_edge(parent, child);
        self.1.record_edge(parent, child);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The collector's aggregated counters are *exactly* the multiset of
    /// edges a deterministic walker run traverses — nothing lost, nothing
    /// invented, for any seed.
    #[test]
    fn edge_counters_match_walk_exactly(seed in 0u64..1_000) {
        let db = Database::new(StoreConfig::default());
        let params = WorkloadParams {
            num_partitions: 2,
            objs_per_partition: 170,
            seed,
            // No graph churn: the run must be a pure read walk so the
            // traversed-edge multiset is well defined.
            update_prob: 0.0,
            ref_update_prob: 0.0,
            ..WorkloadParams::default()
        };
        let info = build_graph(&db, &params).unwrap();
        let stats = TraversalStats::new();
        let truth = VecSink::default();
        let tee = Tee(&stats, &truth);

        // SeedTree-pinned walker stream, exactly as the MPL driver derives
        // it for thread 0.
        let tree = brahma::SeedTree::new(params.seed)
            .child("workload.walker")
            .child_idx(0);
        let mut rng = StdRng::seed_from_u64(tree.seed());
        for i in 0..40 {
            walk_once_observed(&db, &info, i % 2, &params, &mut rng, Some(&tee)).unwrap();
        }

        let mut expected: HashMap<(u64, u64), u64> = HashMap::new();
        for &e in truth.edges.lock().iter() {
            *expected.entry(e).or_insert(0) += 1;
        }
        let observed: HashMap<(u64, u64), u64> = stats
            .edges()
            .iter()
            .map(|e| ((e.parent.to_raw(), e.child.to_raw()), e.count))
            .collect();
        prop_assert_eq!(&observed, &expected);
        prop_assert_eq!(stats.recorded(), truth.edges.lock().len() as u64);
        prop_assert_eq!(stats.dropped(), 0);
    }
}

fn mk(db: &Database, p: brahma::PartitionId) -> PhysAddr {
    let mut t = db.begin();
    let a = t
        .create_object(
            p,
            NewObject {
                tag: 7,
                refs: vec![],
                ref_cap: 4,
                payload: vec![0xAB; 120],
                payload_cap: 120,
            },
        )
        .unwrap();
    t.commit().unwrap();
    a
}

/// A known hot chain whose links all cross pages: `StatsGreedy` must emit a
/// priority order that the `workload::cost` model scores *strictly* better
/// than the identity placement.
#[test]
fn stats_greedy_beats_identity_on_hot_chain() {
    let db = Database::new(StoreConfig::default());
    let p = db.create_partition();
    let objs: Vec<PhysAddr> = (0..300).map(|_| mk(&db, p)).collect();

    // Pick one object per distinct page, so every chain link crosses pages
    // under the current placement.
    let mut chain: Vec<PhysAddr> = Vec::new();
    let mut last_page = None;
    for &o in &objs {
        if last_page != Some(o.page()) {
            chain.push(o);
            last_page = Some(o.page());
        }
    }
    assert!(chain.len() >= 3, "need a multi-page chain, got {}", chain.len());

    let edges: Vec<EdgeCount> = chain
        .windows(2)
        .map(|w| EdgeCount {
            parent: w[0],
            child: w[1],
            count: 100,
        })
        .collect();

    let plan = StatsGreedy::new(&edges).derive(&db, p);
    let score = plan.score.expect("greedy derivation scores its plan");
    let model = workload::cost::CostModel::default();
    assert_eq!(
        score.identity_cost,
        model.cross_page * 100.0 * (chain.len() - 1) as f64,
        "every link crosses pages today"
    );
    assert!(
        score.planned_cost < score.identity_cost,
        "planned {} must beat identity {}",
        score.planned_cost,
        score.identity_cost
    );
    assert!(score.improvement() > 0.0);
    match plan.order {
        Some(MigrationOrder::Priority(order)) => {
            assert_eq!(&order[..chain.len()], &chain[..], "hot chain migrates first, in order");
        }
        other => panic!("expected a priority order, got {other:?}"),
    }
}

/// End to end through the driver: a concurrent observed workload feeds a
/// `StatsGreedy` whose plan reorganizes the hot partition and the builder
/// reports the predicted score.
#[test]
fn observed_workload_drives_a_scored_reorg() {
    let db = Arc::new(Database::new(StoreConfig::default()));
    let params = WorkloadParams {
        num_partitions: 2,
        objs_per_partition: 170,
        mpl: 4,
        ..WorkloadParams::default()
    };
    let info = Arc::new(build_graph(&db, &params).unwrap());
    let stats = Arc::new(TraversalStats::new());
    let handle = workload::start_workload_observed(
        Arc::clone(&db),
        Arc::clone(&info),
        &params,
        Some(Arc::clone(&stats) as Arc<dyn EdgeObserver + Send + Sync>),
    );
    std::thread::sleep(std::time::Duration::from_millis(300));
    let metrics = handle.stop_and_join();
    assert!(metrics.summarize().committed > 0);
    assert!(stats.recorded() > 0, "walkers must have reported edges");

    let target = info.data_partitions[0];
    let outcome = ira::Reorg::on(&db, target)
        .plan_from(StatsGreedy::new(&*stats))
        .run()
        .expect("stats-driven reorganization completes");
    assert_eq!(outcome.migrated(), 170);
    let score = outcome.score.expect("stats-greedy attaches its score");
    assert!(score.identity_cost > 0.0, "observed edges cross pages before reorg");
    brahma::sweep::assert_database_consistent(&db);
}
