//! Lock-free observability primitives for the reorganization substrate.
//!
//! The paper's claim (§5.3) is that IRA wins on *lock contention
//! behaviour*, not I/O; validating that needs counters on the contention
//! paths themselves. This crate provides the building blocks the substrate
//! threads through its hot paths:
//!
//! - [`Counter`]: monotonically increasing `AtomicU64`.
//! - [`Gauge`]: instantaneous level with high-watermark tracking.
//! - [`Histogram`]: fixed power-of-two-bucket latency histogram (values in
//!   microseconds), entirely `AtomicU64`-based — a `record` is a handful
//!   of relaxed atomic adds, safe inside the lock manager's wait loop.
//! - [`Snapshot`]: a named bag of `u64` readings with [`Snapshot::diff`],
//!   so tests and the bench reports can assert on deltas over an interval
//!   ("IRA's lock waits ≪ PQR's").
//!
//! Everything here is dependency-free and allocation-free on the hot path;
//! allocation only happens when a [`Snapshot`] is taken.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// -------------------------------------------------------------- Counter --

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------- Gauge --

/// Instantaneous level (e.g. queue depth) with a high-watermark.
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Self {
            level: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.level.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        let now = self.level.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Decrement, saturating at zero (a racy double-decrement must not
    /// wrap the gauge to `u64::MAX`).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .level
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }

    /// Highest level ever observed via `set`/`inc`.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------ Histogram --

/// Number of power-of-two buckets. Bucket `i < NUM_BUCKETS - 1` counts
/// values `v` with `2^i <= v+1 < 2^(i+1)` in microseconds — i.e. bucket 0
/// is `{0}` µs, bucket 1 is `[1, 2]` µs, bucket 2 is `[3, 6]` µs, … — and
/// the last bucket is overflow (≳ 35 minutes). Wide enough for everything
/// from an uncontended latch to a stuck quiesce.
pub const NUM_BUCKETS: usize = 32;

/// Fixed-bucket latency histogram over microsecond values.
///
/// `record` is lock-free (three relaxed atomic RMWs plus a `fetch_max`);
/// readings are eventually consistent, which is fine for statistics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        // `[AtomicU64::new(0); N]` needs Copy; an inline-const block makes
        // each element its own fresh atomic.
        Self {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a microsecond value: floor(log2(v + 1)), clamped.
    #[inline]
    pub fn bucket_index(value_us: u64) -> usize {
        let idx = 63 - (value_us.saturating_add(1) | 1).leading_zeros() as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Inclusive upper bound of a bucket, in microseconds.
    pub fn bucket_upper_bound_us(index: usize) -> u64 {
        if index >= NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (2u64 << index) - 2
        }
    }

    #[inline]
    pub fn record_us(&self, value_us: u64) {
        self.buckets[Self::bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_us, Ordering::Relaxed);
        self.max.fetch_max(value_us, Ordering::Relaxed);
    }

    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_us(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max_us(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (0.0 ..= 1.0): the upper
    /// edge of the first bucket at which the cumulative count reaches
    /// `q * count`. Returns 0 for an empty histogram; the true max is
    /// reported instead of the bucket edge when the quantile lands in the
    /// top occupied bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_upper_bound_us(i).min(self.max_us());
            }
        }
        self.max_us()
    }
}

// ------------------------------------------------------------- Snapshot --

/// A named, ordered bag of counter readings taken at one instant.
///
/// Keys are dotted paths (`"lock.waits"`, `"wal.flush_us_sum"`). Missing
/// keys read as zero, so snapshots from different subsystems merge and
/// diff without ceremony.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: BTreeMap<String, u64>,
}

impl Snapshot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, key: &str, value: u64) {
        self.entries.insert(key.to_string(), value);
    }

    /// Read a key; absent keys are zero.
    pub fn get(&self, key: &str) -> u64 {
        self.entries.get(key).copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Fold another snapshot in, summing values on key collisions. Sums
    /// saturate at `u64::MAX`, matching [`Snapshot::diff`]'s clamping
    /// contract — merging two near-saturated counters must not panic.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in other.iter() {
            let slot = self.entries.entry(k.to_string()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
    }

    /// Per-key saturating difference `self - earlier`, over the union of
    /// both key sets. Monotonic counters yield the events in the interval;
    /// gauges yield the level change (clamped at zero when it fell).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::new();
        for (k, &v) in &self.entries {
            out.entries
                .insert(k.clone(), v.saturating_sub(earlier.get(k)));
        }
        for (k, &v) in &earlier.entries {
            out.entries
                .entry(k.clone())
                .or_insert_with(|| 0u64.saturating_sub(v));
        }
        out
    }

    /// Compact single-line rendering of the non-zero entries under
    /// `prefix` (empty prefix = everything): `a.b=3 a.c=9`.
    pub fn render_compact(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (k, v) in self.iter() {
            if v == 0 || !k.starts_with(prefix) {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("{k}={v}"));
        }
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 2);
        g.dec();
        g.dec(); // saturates, must not wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 holds 0..=1 µs, bucket 1 holds 2..=3? No: bucket i
        // covers values v with floor(log2(v+1)) == i, i.e. bucket 0 is
        // {0}, bucket 1 is {1, 2}, bucket 2 is {3..6}, ... Assert via the
        // function's own invariants rather than a hand-written table:
        // indices are monotone in v and every upper bound maps to its own
        // bucket while upper_bound + 1 maps to the next.
        assert_eq!(Histogram::bucket_index(0), 0);
        for i in 0..NUM_BUCKETS - 2 {
            let ub = Histogram::bucket_upper_bound_us(i);
            assert_eq!(Histogram::bucket_index(ub), i, "upper bound of bucket {i}");
            assert_eq!(Histogram::bucket_index(ub + 1), i + 1, "first of bucket {}", i + 1);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_bucket_boundaries_table() {
        // Hand-written table of the first buckets plus both sides of each
        // boundary, pinning the documented mapping (bucket 0 = {0},
        // bucket 1 = [1, 2], bucket 2 = [3, 6], ...) independently of
        // `bucket_upper_bound_us`.
        let table: &[(u64, usize)] = &[
            (0, 0),
            (1, 1),
            (2, 1),
            (3, 2),
            (6, 2),
            (7, 3),
            (14, 3),
            (15, 4),
            (30, 4),
            (31, 5),
            (62, 5),
            (63, 6),
            (1_000, 9),
            (1_000_000, 19),
            ((2u64 << 30) - 2, 30),          // last value of bucket 30
            ((2u64 << 30) - 1, 31),          // first value of the overflow bucket
            (u64::MAX, NUM_BUCKETS - 1),
        ];
        for &(v, want) in table {
            assert_eq!(Histogram::bucket_index(v), want, "bucket_index({v})");
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100, 10_000] {
            h.record_us(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 10_107);
        assert_eq!(h.max_us(), 10_000);
        assert!((h.mean_us() - 10_107.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.bucket_count(Histogram::bucket_index(1)), 2);
        // Quantiles: upper-bound estimates, never below the true value's
        // bucket lower edge and never above the recorded max.
        assert_eq!(h.quantile_us(1.0), 10_000);
        let p50 = h.quantile_us(0.5);
        assert!((1..=5).contains(&p50), "p50 estimate {p50}");
        assert_eq!(h.quantile_us(0.0), 0); // clamp: smallest nonempty bucket
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn histogram_duration_saturates() {
        let h = Histogram::new();
        h.record(Duration::from_micros(250));
        assert_eq!(h.sum_us(), 250);
        h.record(Duration::MAX); // must clamp, not panic
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_diff_is_saturating_and_total() {
        let mut a = Snapshot::new();
        a.set("lock.waits", 10);
        a.set("gauge.level", 7);
        let mut b = Snapshot::new();
        b.set("lock.waits", 25);
        b.set("new.key", 3);
        let d = b.diff(&a);
        assert_eq!(d.get("lock.waits"), 15);
        assert_eq!(d.get("new.key"), 3);
        assert_eq!(d.get("gauge.level"), 0, "fell to absent: clamped to 0");
        assert_eq!(d.get("never.seen"), 0);
    }

    #[test]
    fn snapshot_merge_sums() {
        let mut a = Snapshot::new();
        a.set("k", 2);
        let mut b = Snapshot::new();
        b.set("k", 3);
        b.set("only.b", 1);
        a.merge(&b);
        assert_eq!(a.get("k"), 5);
        assert_eq!(a.get("only.b"), 1);
    }

    #[test]
    fn snapshot_merge_saturates_instead_of_overflowing() {
        let mut a = Snapshot::new();
        a.set("k", u64::MAX - 1);
        let mut b = Snapshot::new();
        b.set("k", 5);
        a.merge(&b); // would panic in debug builds with unchecked `+=`
        assert_eq!(a.get("k"), u64::MAX);
    }

    #[test]
    fn snapshot_render_filters_zeros_and_prefix() {
        let mut s = Snapshot::new();
        s.set("lock.waits", 3);
        s.set("lock.timeouts", 0);
        s.set("wal.records", 9);
        assert_eq!(s.render_compact("lock."), "lock.waits=3");
        assert_eq!(s.render_compact(""), "lock.waits=3 wal.records=9");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record_us(v);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
        assert_eq!((0..NUM_BUCKETS).map(|i| h.bucket_count(i)).sum::<u64>(), 4000);
    }
}
