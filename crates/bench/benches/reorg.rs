//! Microbenchmarks for the reorganization machinery itself: the fuzzy
//! traversal, a single object migration (exact parents + move), and full
//! partition reorganizations (IRA basic, IRA two-lock, offline).

use brahma::{Database, StoreConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ira::{approx::find_objects_and_approx_parents, IraVariant, Reorg, Strategy};
use workload::{build_graph, WorkloadParams};

fn graph_params(objs: usize) -> WorkloadParams {
    WorkloadParams {
        num_partitions: 2,
        objs_per_partition: objs,
        ..WorkloadParams::default()
    }
}

fn bench_fuzzy_traversal(c: &mut Criterion) {
    let db = Database::new(StoreConfig::default());
    let info = build_graph(&db, &graph_params(1020)).unwrap();
    let p = info.data_partitions[0];
    c.bench_function("reorg/fuzzy_traversal_1020_objects", |b| {
        b.iter(|| {
            db.start_reorg(p).unwrap();
            let state = find_objects_and_approx_parents(&db, p);
            db.end_reorg(p);
            black_box(state.order.len())
        })
    });
}

fn bench_full_reorg(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorg/full_partition_510");
    group.sample_size(10);
    group.bench_function("ira_basic", |b| {
        b.iter(|| {
            let db = Database::new(StoreConfig::default());
            let info = build_graph(&db, &graph_params(510)).unwrap();
            let r = Reorg::on(&db, info.data_partitions[0]).run().unwrap();
            black_box(r.migrated())
        })
    });
    group.bench_function("ira_batched_32", |b| {
        b.iter(|| {
            let db = Database::new(StoreConfig::default());
            let info = build_graph(&db, &graph_params(510)).unwrap();
            let r = Reorg::on(&db, info.data_partitions[0])
                .batch(32)
                .run()
                .unwrap();
            black_box(r.migrated())
        })
    });
    group.bench_function("ira_two_lock", |b| {
        b.iter(|| {
            let db = Database::new(StoreConfig::default());
            let info = build_graph(&db, &graph_params(510)).unwrap();
            let r = Reorg::on(&db, info.data_partitions[0])
                .variant(IraVariant::TwoLock)
                .run()
                .unwrap();
            black_box(r.migrated())
        })
    });
    group.bench_function("ira_parallel_4", |b| {
        b.iter(|| {
            let db = Database::new(StoreConfig::default());
            let info = build_graph(&db, &graph_params(510)).unwrap();
            let r = Reorg::on(&db, info.data_partitions[0])
                .workers(4)
                .batch(8)
                .run()
                .unwrap();
            black_box(r.migrated())
        })
    });
    group.bench_function("offline", |b| {
        b.iter(|| {
            let db = Database::new(StoreConfig::default());
            let info = build_graph(&db, &graph_params(510)).unwrap();
            let r = Reorg::on(&db, info.data_partitions[0])
                .strategy(Strategy::Offline)
                .run()
                .unwrap();
            black_box(r.migrated())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fuzzy_traversal, bench_full_reorg
}
criterion_main!(benches);
