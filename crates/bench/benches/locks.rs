//! Microbenchmarks for the lock manager: uncontended acquisition, shared
//! sharing, and the ever-held tracking overhead of the Section 4.1
//! extension.

use brahma::{LockManager, LockMode, PartitionId, PhysAddr, TxnId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn addr(i: u64) -> PhysAddr {
    PhysAddr::new(PartitionId((i % 8) as u16), (i / 8) as u32, 0)
}

fn bench_uncontended(c: &mut Criterion) {
    let m = LockManager::new(64, Duration::from_secs(1));
    c.bench_function("locks/uncontended_x_lock_unlock", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let a = addr(i % 1024);
            m.lock(TxnId(1), a, LockMode::Exclusive).unwrap();
            m.unlock(TxnId(1), a);
            i += 1;
            black_box(i)
        })
    });
}

fn bench_shared(c: &mut Criterion) {
    let m = LockManager::new(64, Duration::from_secs(1));
    let a = addr(0);
    c.bench_function("locks/shared_reentry_10_txns", |b| {
        b.iter(|| {
            for t in 0..10 {
                m.lock(TxnId(t), a, LockMode::Shared).unwrap();
            }
            for t in 0..10 {
                m.unlock(TxnId(t), a);
            }
        })
    });
}

fn bench_history_tracking(c: &mut Criterion) {
    let m = LockManager::new(64, Duration::from_secs(1));
    m.set_history_tracking(true);
    c.bench_function("locks/x_lock_with_history_tracking", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let a = addr(i % 1024);
            m.lock(TxnId(1), a, LockMode::Exclusive).unwrap();
            m.unlock(TxnId(1), a);
            m.drop_history(TxnId(1), &[a]);
            i += 1;
            black_box(i)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_uncontended, bench_shared, bench_history_tracking
}
criterion_main!(benches);
