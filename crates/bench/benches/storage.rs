//! Microbenchmarks for the storage substrate: object create/read/update
//! through the transactional path, fuzzy (latch-only) reads, and WAL
//! appends.

use brahma::{Database, LockMode, NewObject, StoreConfig, TxnId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn db_with_objects(n: usize) -> (Database, Vec<brahma::PhysAddr>) {
    let db = Database::new(StoreConfig::default());
    let p = db.create_partition();
    let mut txn = db.begin();
    let addrs = (0..n)
        .map(|_| {
            txn.create_object(
                p,
                NewObject {
                    tag: 1,
                    refs: vec![],
                    ref_cap: 4,
                    payload: vec![0xAB; 64],
                    payload_cap: 64,
                },
            )
            .unwrap()
        })
        .collect();
    txn.commit().unwrap();
    (db, addrs)
}

fn bench_create_commit(c: &mut Criterion) {
    c.bench_function("storage/create_100_objects_one_txn", |b| {
        b.iter(|| {
            let db = Database::new(StoreConfig::default());
            let p = db.create_partition();
            let mut txn = db.begin();
            for _ in 0..100 {
                txn.create_object(p, NewObject::exact(1, vec![], vec![0u8; 64]))
                    .unwrap();
            }
            txn.commit().unwrap();
            black_box(db.partition(p).unwrap().object_count())
        })
    });
}

fn bench_locked_read(c: &mut Criterion) {
    let (db, addrs) = db_with_objects(1024);
    c.bench_function("storage/locked_read", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = addrs[i % addrs.len()];
            let mut txn = db.begin();
            txn.lock(a, LockMode::Shared).unwrap();
            let v = txn.read(a).unwrap();
            txn.commit().unwrap();
            i += 1;
            black_box(v.payload.len())
        })
    });
}

fn bench_fuzzy_read(c: &mut Criterion) {
    let (db, addrs) = db_with_objects(1024);
    c.bench_function("storage/fuzzy_read_refs", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = addrs[i % addrs.len()];
            i += 1;
            black_box(db.fuzzy_read_refs(a).unwrap().len())
        })
    });
}

fn bench_payload_update(c: &mut Criterion) {
    let (db, addrs) = db_with_objects(1024);
    let payload = vec![0xCDu8; 64];
    c.bench_function("storage/payload_update_txn", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = addrs[i % addrs.len()];
            let mut txn = db.begin();
            txn.lock(a, LockMode::Exclusive).unwrap();
            txn.set_payload(a, &payload).unwrap();
            txn.commit().unwrap();
            i += 1;
        })
    });
}

fn bench_wal_append(c: &mut Criterion) {
    let wal = brahma::Wal::new(false, std::time::Duration::ZERO);
    c.bench_function("storage/wal_append", |b| {
        b.iter(|| {
            let lsn = wal.append(
                TxnId(1),
                brahma::LogPayload::SetPayload {
                    addr: brahma::PhysAddr::from_raw(42),
                    old: vec![0u8; 64],
                    new: vec![1u8; 64],
                },
            );
            black_box(lsn)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_create_commit, bench_locked_read, bench_fuzzy_read,
              bench_payload_update, bench_wal_append
}
criterion_main!(benches);
