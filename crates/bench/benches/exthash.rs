//! Microbenchmarks for the extendible hash index (the structure backing
//! the TRT and ERT, as in the paper's Brahma).

use brahma::exthash::ExtHash;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("exthash/insert");
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("exthash", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = ExtHash::new();
                for i in 0..n as u64 {
                    t.insert(i, i);
                }
                black_box(t.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("std_hashmap", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = HashMap::new();
                for i in 0..n as u64 {
                    t.insert(i, i);
                }
                black_box(t.len())
            })
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("exthash/lookup");
    let n = 10_000u64;
    let mut ext = ExtHash::new();
    let mut std = HashMap::new();
    for i in 0..n {
        ext.insert(i, i);
        std.insert(i, i);
    }
    group.bench_function("exthash", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..n {
                sum += *ext.get(&i).unwrap();
            }
            black_box(sum)
        })
    });
    group.bench_function("std_hashmap", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..n {
                sum += *std.get(&i).unwrap();
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    // The TRT pattern: notes inserted, then purged (Section 4.5), so the
    // table grows and shrinks constantly.
    c.bench_function("exthash/churn_1000", |b| {
        b.iter(|| {
            let mut t = ExtHash::with_bucket_cap(8);
            for round in 0..10u64 {
                for i in 0..1_000 {
                    t.insert(round * 1_000 + i, i);
                }
                for i in 0..1_000 {
                    t.remove(&(round * 1_000 + i));
                }
            }
            black_box(t.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_lookup, bench_churn
}
criterion_main!(benches);
