//! CLI harness regenerating the paper's tables and figures.
//!
//! Usage: `paper_figures <experiment>... [--quick] [--out DIR]`
//! where experiment is one of: all, mpl, table2, partsize, updprob, glue,
//! ops, nparts, eqdur, scaling, ablation.

use bench::experiments::{self, HarnessOptions};
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    args.retain(|a| !a.starts_with("--"));
    args.retain(|a| {
        // drop the value of --out
        a != out_dir.to_str().unwrap_or("")
    });
    if args.is_empty() {
        eprintln!(
            "usage: paper_figures <all|mpl|table2|partsize|updprob|glue|ops|nparts|eqdur|scaling|ablation>... [--quick] [--out DIR]"
        );
        std::process::exit(2);
    }
    let opts = HarnessOptions { quick };
    println!(
        "# Paper-figure harness ({} mode); Table 1 defaults unless swept.",
        if quick { "quick" } else { "full" }
    );

    let run_one = |name: &str| {
        let (slug, exp) = match name {
            "mpl" => ("mpl", experiments::exp_mpl(&opts)),
            "table2" => ("table2", experiments::exp_table2(&opts)),
            "partsize" => ("partsize", experiments::exp_partition_size(&opts)),
            "updprob" => ("updprob", experiments::exp_update_prob(&opts)),
            "glue" => ("glue", experiments::exp_glue(&opts)),
            "ops" => ("ops", experiments::exp_ops_per_trans(&opts)),
            "nparts" => ("nparts", experiments::exp_num_partitions(&opts)),
            "eqdur" => ("eqdur", experiments::exp_equal_duration(&opts)),
            "scaling" => ("scaling", experiments::exp_scaling(&opts)),
            "ablation" => ("ablation", experiments::exp_ablation(&opts)),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        if slug == "table2" {
            println!("{}", exp.render_table2());
        } else {
            println!("{}", exp.render());
        }
        if let Err(e) = exp.write_csv(&out_dir, slug) {
            eprintln!("warning: could not write CSV for {slug}: {e}");
        }
    };

    for name in &args {
        if name == "all" {
            for n in [
                "mpl", "table2", "partsize", "updprob", "glue", "ops", "nparts", "eqdur",
                "scaling", "ablation",
            ] {
                run_one(n);
            }
        } else {
            run_one(name);
        }
    }
}
