//! CLI harness regenerating the paper's tables and figures.
//!
//! Usage: `paper_figures <experiment>... [--quick] [--out DIR]`
//! where experiment is one of: all, mpl, table2, partsize, updprob, glue,
//! ops, nparts, eqdur, scaling, ablation — plus two perf-trajectory
//! subcommands (see DESIGN.md §13):
//!
//! * `paper_figures trajectory [--quick]` runs the fixed cell matrix and
//!   writes `BENCH_<n>.json` (next free index) into `TRAJ_DIR` (default:
//!   the current directory, i.e. the repo root), then diffs against the
//!   newest prior `BENCH_*.json`. `TRAJ_QUICK=1` implies `--quick`;
//!   `TRAJ_INDEX=<n>` pins the output index.
//! * `paper_figures trajectory-validate <file>` structurally validates an
//!   emitted file (CI smoke gate); exits nonzero on any violation.
//! * `paper_figures locality [--quick]` runs only the closed clustering
//!   loop (observe → plan → reorganize → measure) and exits nonzero unless
//!   the stats-derived plan improved the placement-cost metric — the CI
//!   locality smoke.

use bench::experiments::{self, HarnessOptions};
use bench::locality::{run_locality, LocalityOptions};
use bench::trajectory;
use std::path::PathBuf;

fn run_trajectory_cli(quick_flag: bool) {
    let quick = quick_flag || brahma::env_cfg::traj_quick();
    let dir = PathBuf::from(brahma::env_cfg::traj_dir());
    let existing = trajectory::bench_files(&dir);
    let index = brahma::env_cfg::traj_index()
        .unwrap_or_else(|| existing.last().map(|(n, _)| n + 1).unwrap_or(1));
    println!(
        "# Perf trajectory ({} mode) -> BENCH_{index}.json",
        if quick { "quick" } else { "full" }
    );
    let traj = trajectory::run_trajectory(&trajectory::TrajectoryOptions { quick });
    let out = dir.join(format!("BENCH_{index}.json"));
    let text = traj.to_json(index);
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: could not write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());
    // Diff against the newest prior file (excluding the one just written).
    let prior = existing.iter().rev().find(|(n, _)| *n != index);
    match prior {
        None => println!("no prior BENCH_*.json to compare against"),
        Some((n, path)) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| trajectory::parse_json(&s))
        {
            Err(e) => eprintln!("warning: could not read BENCH_{n}.json: {e}"),
            Ok(doc) => {
                println!("vs BENCH_{n}.json (rule: {}):", trajectory::REGRESSION_RULE);
                let cmp = trajectory::compare(&doc, &traj);
                for line in &cmp.lines {
                    println!("  {line}");
                }
                if cmp.regressions.is_empty() {
                    println!("no regressions");
                } else {
                    for r in &cmp.regressions {
                        println!("REGRESSION: {r}");
                    }
                }
            }
        },
    }
}

fn run_trajectory_validate(file: &str) {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read {file}: {e}");
            std::process::exit(1);
        }
    };
    match trajectory::parse_json(&text).and_then(|doc| trajectory::validate(&doc)) {
        Ok(()) => println!("{file}: valid trajectory file"),
        Err(e) => {
            eprintln!("error: {file}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_locality_cli(quick_flag: bool) {
    let quick = quick_flag || brahma::env_cfg::traj_quick();
    println!(
        "# Locality loop ({} mode): observe -> plan -> reorganize -> measure",
        if quick { "quick" } else { "full" }
    );
    let r = run_locality(&LocalityOptions { quick });
    println!(
        "pre:  {:>8.1} ops/s, p99 {:>6} us, hit rate {:.3} ({} committed)",
        r.pre.ops_per_sec, r.pre.p99_us, r.pre.hit_rate, r.pre.committed
    );
    println!(
        "post: {:>8.1} ops/s, p99 {:>6} us, hit rate {:.3} ({} committed)",
        r.post.ops_per_sec, r.post.p99_us, r.post.hit_rate, r.post.committed
    );
    println!(
        "placement cost: identity {:.0} -> planned {:.0} -> achieved {:.0} ({:.1}% better)",
        r.identity_cost,
        r.planned_cost,
        r.achieved_cost,
        r.achieved_improvement() * 100.0
    );
    println!(
        "migrated {} objects from {} observed traversals over {} distinct edges",
        r.migrated, r.edges_recorded, r.edges_distinct
    );
    if r.achieved_cost >= r.identity_cost {
        eprintln!("error: stats-derived plan did not improve the locality metric");
        std::process::exit(1);
    }
    println!("locality improved");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trajectory") => {
            run_trajectory_cli(args.iter().any(|a| a == "--quick"));
            return;
        }
        Some("locality") => {
            run_locality_cli(args.iter().any(|a| a == "--quick"));
            return;
        }
        Some("trajectory-validate") => {
            let Some(file) = args.get(1) else {
                eprintln!("usage: paper_figures trajectory-validate <file>");
                std::process::exit(2);
            };
            run_trajectory_validate(file);
            return;
        }
        _ => {}
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    args.retain(|a| !a.starts_with("--"));
    args.retain(|a| {
        // drop the value of --out
        a != out_dir.to_str().unwrap_or("")
    });
    if args.is_empty() {
        eprintln!(
            "usage: paper_figures <all|mpl|table2|partsize|updprob|glue|ops|nparts|eqdur|scaling|ablation>... [--quick] [--out DIR]\n       paper_figures trajectory [--quick]          (env: TRAJ_QUICK, TRAJ_DIR, TRAJ_INDEX)\n       paper_figures trajectory-validate <file>\n       paper_figures locality [--quick]            (closed clustering loop; fails unless it improves)"
        );
        std::process::exit(2);
    }
    let opts = HarnessOptions { quick };
    println!(
        "# Paper-figure harness ({} mode); Table 1 defaults unless swept.",
        if quick { "quick" } else { "full" }
    );

    let run_one = |name: &str| {
        let (slug, exp) = match name {
            "mpl" => ("mpl", experiments::exp_mpl(&opts)),
            "table2" => ("table2", experiments::exp_table2(&opts)),
            "partsize" => ("partsize", experiments::exp_partition_size(&opts)),
            "updprob" => ("updprob", experiments::exp_update_prob(&opts)),
            "glue" => ("glue", experiments::exp_glue(&opts)),
            "ops" => ("ops", experiments::exp_ops_per_trans(&opts)),
            "nparts" => ("nparts", experiments::exp_num_partitions(&opts)),
            "eqdur" => ("eqdur", experiments::exp_equal_duration(&opts)),
            "scaling" => ("scaling", experiments::exp_scaling(&opts)),
            "ablation" => ("ablation", experiments::exp_ablation(&opts)),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        if slug == "table2" {
            println!("{}", exp.render_table2());
        } else {
            println!("{}", exp.render());
        }
        if let Err(e) = exp.write_csv(&out_dir, slug) {
            eprintln!("warning: could not write CSV for {slug}: {e}");
        }
    };

    for name in &args {
        if name == "all" {
            for n in [
                "mpl", "table2", "partsize", "updprob", "glue", "ops", "nparts", "eqdur",
                "scaling", "ablation",
            ] {
                run_one(n);
            }
        } else {
            run_one(name);
        }
    }
}
