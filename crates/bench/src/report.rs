//! Table/CSV rendering for the paper-figure harness.

use crate::runner::CellResult;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One row of an experiment: a swept x-value plus the three systems'
/// results.
pub struct Row {
    pub x_label: String,
    pub cells: Vec<CellResult>,
}

/// A completed experiment, printable as the paper's figure series.
pub struct Experiment {
    /// e.g. "Figure 6/7: MPL scaleup".
    pub title: String,
    /// Name of the swept parameter, e.g. "MPL".
    pub x_name: String,
    pub rows: Vec<Row>,
}

impl Experiment {
    /// Render the throughput and average-response-time series (the two
    /// metrics the paper's figures plot), plus reorg durations.
    ///
    /// The algo column set is the union over *all* rows, and each row's
    /// cells are looked up by algo name — a ragged row (e.g. a cell
    /// skipped after a `SimulatedCrash`) renders `-` in its gaps instead
    /// of silently shifting later columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut algos: Vec<&str> = Vec::new();
        for row in &self.rows {
            for c in &row.cells {
                if !algos.contains(&c.algo.name()) {
                    algos.push(c.algo.name());
                }
            }
        }
        let _ = write!(out, "{:>10}", self.x_name);
        for a in &algos {
            let _ = write!(out, " {:>9}", format!("{a}.tps"));
        }
        for a in &algos {
            let _ = write!(out, " {:>10}", format!("{a}.art_ms"));
        }
        for a in &algos {
            let _ = write!(out, " {:>10}", format!("{a}.reorg_s"));
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let by_name = |a: &str| row.cells.iter().find(|c| c.algo.name() == a);
            let _ = write!(out, "{:>10}", row.x_label);
            for a in &algos {
                match by_name(a) {
                    Some(c) => {
                        let _ = write!(out, " {:>9.1}", c.summary.throughput_tps);
                    }
                    None => {
                        let _ = write!(out, " {:>9}", "-");
                    }
                }
            }
            for a in &algos {
                match by_name(a) {
                    Some(c) => {
                        let _ = write!(out, " {:>10.1}", c.summary.avg_ms);
                    }
                    None => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
            for a in &algos {
                match by_name(a).and_then(|c| c.reorg_secs) {
                    Some(s) => {
                        let _ = write!(out, " {:>10.2}", s);
                    }
                    None => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out.push_str(&self.render_counters());
        out
    }

    /// Render the substrate counter deltas of every cell: one line per
    /// cell with the non-zero `lock.*` / `wal.*` / `ira.*` / `pqr.*` /
    /// `db.*` / `workload.*` keys. This is the observability companion to
    /// the figures — the *why* behind the throughput numbers (e.g. PQR's
    /// quiesce locks and the walkers' lock waits during it).
    pub fn render_counters(&self) -> String {
        let mut out = String::new();
        let any = self
            .rows
            .iter()
            .any(|r| r.cells.iter().any(|c| !c.counters.is_empty()));
        if !any {
            return out;
        }
        let _ = writeln!(out, "-- substrate counters --");
        for row in &self.rows {
            for c in &row.cells {
                let compact = c.counters.render_compact("");
                if compact.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{}={} {}: {}",
                    self.x_name,
                    row.x_label,
                    c.algo.name(),
                    compact
                );
            }
        }
        out
    }

    /// Render the Table 2 style analysis (throughput, avg/max/stddev of
    /// response times) for a single-row experiment.
    pub fn render_table2(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>12} {:>12} {:>14} {:>9}",
            "Algo", "Throughput", "AvgResp(ms)", "MaxResp(ms)", "StdDevResp(ms)", "Aborts"
        );
        for row in &self.rows {
            for c in &row.cells {
                let _ = writeln!(
                    out,
                    "{:>6} {:>10.1} {:>12.1} {:>12.1} {:>14.1} {:>9}",
                    c.algo.name(),
                    c.summary.throughput_tps,
                    c.summary.avg_ms,
                    c.summary.max_ms,
                    c.summary.stddev_ms,
                    c.summary.aborted_attempts,
                );
            }
        }
        out
    }

    /// Write the experiment as CSV (one line per cell).
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::from(
            "x,algo,throughput_tps,avg_ms,max_ms,stddev_ms,p95_ms,p99_ms,\
             committed,aborted_attempts,window_s,reorg_s,migrated,lock_timeouts\n",
        );
        for row in &self.rows {
            for c in &row.cells {
                let _ = writeln!(
                    out,
                    "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{:.3},{},{},{}",
                    row.x_label,
                    c.algo.name(),
                    c.summary.throughput_tps,
                    c.summary.avg_ms,
                    c.summary.max_ms,
                    c.summary.stddev_ms,
                    c.summary.p95_ms,
                    c.summary.p99_ms,
                    c.summary.committed,
                    c.summary.aborted_attempts,
                    c.summary.window_s,
                    c.reorg_secs.map(|s| format!("{s:.3}")).unwrap_or_default(),
                    c.migrated,
                    c.lock_timeouts,
                );
            }
        }
        fs::write(dir.join(format!("{slug}.csv")), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Algo;
    use workload::Summary;

    fn cell(algo: Algo, tps: f64) -> CellResult {
        let mut counters = obs::Snapshot::new();
        counters.set("lock.waits", 7);
        counters.set("wal.flushes", 100);
        CellResult {
            algo,
            summary: Summary {
                committed: 100,
                aborted_attempts: 2,
                errors: 0,
                throughput_tps: tps,
                avg_ms: 10.0,
                max_ms: 50.0,
                stddev_ms: 5.0,
                p95_ms: 20.0,
                p99_ms: 40.0,
                window_s: 1.0,
            },
            reorg_secs: Some(1.5),
            migrated: 42,
            lock_timeouts: 3,
            latency_p99_us: 40_000,
            latency_p999_us: 50_000,
            counters,
        }
    }

    fn experiment() -> Experiment {
        Experiment {
            title: "Test".into(),
            x_name: "MPL".into(),
            rows: vec![Row {
                x_label: "30".into(),
                cells: vec![cell(Algo::Nr, 35.0), cell(Algo::Ira, 33.7)],
            }],
        }
    }

    #[test]
    fn render_contains_series() {
        let s = experiment().render();
        assert!(s.contains("NR.tps"));
        assert!(s.contains("IRA.art_ms"));
        assert!(s.contains("35.0"));
    }

    #[test]
    fn render_ragged_rows_key_cells_by_algo() {
        // Second row lost its NR cell (e.g. skipped after a crash) and
        // gained a PQR cell; columns must stay attributed by name, with
        // `-` in the gaps.
        let e = Experiment {
            title: "Ragged".into(),
            x_name: "MPL".into(),
            rows: vec![
                Row {
                    x_label: "8".into(),
                    cells: vec![cell(Algo::Nr, 35.0), cell(Algo::Ira, 33.7)],
                },
                Row {
                    x_label: "30".into(),
                    cells: vec![cell(Algo::Ira, 28.1), cell(Algo::Pqr, 9.9)],
                },
            ],
        };
        let s = e.render();
        // Union of algos across rows, in first-seen order.
        let header = s.lines().nth(1).unwrap();
        assert!(header.contains("NR.tps") && header.contains("IRA.tps") && header.contains("PQR.tps"));
        // Row 30 has no NR cell: its NR.tps column must render `-`, and
        // IRA's throughput must land under IRA, not shifted into NR.
        let row30 = s.lines().find(|l| l.trim_start().starts_with("30")).unwrap();
        let fields: Vec<&str> = row30.split_whitespace().collect();
        assert_eq!(fields[1], "-", "NR gap: {row30}");
        assert_eq!(fields[2], "28.1", "IRA tps stays in its column: {row30}");
        assert_eq!(fields[3], "9.9", "PQR tps: {row30}");
        // Row 8 has no PQR cell: trailing `-`.
        let row8 = s.lines().find(|l| l.trim_start().starts_with("8")).unwrap();
        let fields: Vec<&str> = row8.split_whitespace().collect();
        assert_eq!(fields[3], "-", "PQR gap: {row8}");
    }

    #[test]
    fn render_includes_substrate_counters() {
        let s = experiment().render();
        assert!(s.contains("substrate counters"));
        assert!(s.contains("lock.waits=7"));
        assert!(s.contains("wal.flushes=100"));
    }

    #[test]
    fn table2_contains_stddev() {
        let s = experiment().render_table2();
        assert!(s.contains("StdDevResp"));
        assert!(s.contains("5.0"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("odb-bench-test");
        experiment().write_csv(&dir, "test").unwrap();
        let text = std::fs::read_to_string(dir.join("test.csv")).unwrap();
        assert!(text.lines().count() == 3);
        assert!(text.contains("NR"));
    }
}
