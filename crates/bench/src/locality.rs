//! The closed clustering loop, measured end to end:
//! observe → plan → reorganize → measure (DESIGN §15).
//!
//! The trajectory matrix proves "reorganization got faster"; this cell
//! proves "traffic got faster *because of where objects landed*". It runs
//! the Section 5.2 walkers over a deliberately fragmented placement under
//! a page-grained buffer cache ([`workload::PagedCpuModel`]), collects
//! per-edge co-access counts ([`workload::TraversalStats`]), reorganizes
//! every data partition from those stats
//! (`Reorg::on(..).plan_from(StatsGreedy::new(&stats))`), then re-runs the
//! *same* seeded walker mix and reports the before/after difference:
//! throughput, p99, cache hit rate, and the placement cost of the observed
//! edges (identity → planned → achieved).
//!
//! Fragmentation is honest about what it models: a long-lived store whose
//! creation-order clustering decayed under churn. The scramble phase uses
//! the reorganizer itself with a seeded random [`MigrationOrder::Priority`]
//! — the same machinery, pointed backwards.

use ira::{MigrationOrder, Reorg, StatsGreedy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use workload::cost::CostModel;
use workload::{
    build_graph, start_workload, start_workload_observed, CpuModel, PagedCpuModel,
    TraversalStats, WorkloadParams,
};
use workload::stats::EdgeObserver;
use brahma::{Database, PhysAddr, StoreConfig};

#[derive(Debug, Clone, Copy)]
pub struct LocalityOptions {
    /// Shrink windows and object counts for the CI smoke run.
    pub quick: bool,
}

/// One measurement window of the walker mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityWindow {
    pub ops_per_sec: f64,
    pub p99_us: u64,
    pub committed: u64,
    /// Buffer-cache hit rate over the window, in [0, 1].
    pub hit_rate: f64,
}

/// The whole loop's result; serialized as the `"locality"` object of
/// `BENCH_<n>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityResult {
    /// Walkers over the fragmented placement (this window also feeds the
    /// statistics collector).
    pub pre: LocalityWindow,
    /// The same seeded walker mix after the stats-driven reorganization.
    pub post: LocalityWindow,
    /// Cost of the observed edges under the fragmented placement
    /// ([`CostModel`] units).
    pub identity_cost: f64,
    /// Cost the greedy policy *predicted* for its plan (summed over
    /// partitions).
    pub planned_cost: f64,
    /// Cost of the same edges under the placement the reorganization
    /// actually produced — the ground truth the prediction is checked
    /// against.
    pub achieved_cost: f64,
    /// Objects migrated by the stats-driven reorganizations.
    pub migrated: u64,
    /// Collector health over the observation window.
    pub edges_recorded: u64,
    pub edges_distinct: u64,
}

impl LocalityResult {
    /// Achieved relative cost improvement, in [0, 1] when clustering helped.
    pub fn achieved_improvement(&self) -> f64 {
        if self.identity_cost <= 0.0 {
            0.0
        } else {
            1.0 - self.achieved_cost / self.identity_cost
        }
    }
}

fn params(opts: &LocalityOptions) -> WorkloadParams {
    WorkloadParams {
        num_partitions: 2,
        objs_per_partition: if opts.quick { 340 } else { 1020 },
        mpl: 4,
        // Read-mostly: the loop measures placement, not write contention.
        update_prob: 0.1,
        // Large payloads so a cluster spans several pages and placement
        // has something to win (40-byte objects pack a whole cluster into
        // a fraction of one 16 KiB page).
        payload_size: 400,
        ..WorkloadParams::default()
    }
}

fn window(opts: &LocalityOptions) -> Duration {
    if opts.quick {
        Duration::from_millis(600)
    } else {
        Duration::from_secs(3)
    }
}

/// Deterministically scramble every data partition's placement: migrate in
/// seeded-random order so creation-order clustering is destroyed, the way
/// years of churn would.
fn fragment(db: &Database, partitions: &[brahma::PartitionId], seed: u64) {
    let mut rng = StdRng::seed_from_u64(
        brahma::SeedTree::new(seed).child("locality.scramble").seed(),
    );
    for &p in partitions {
        let mut objs: Vec<PhysAddr> = db
            .partition(p)
            .map(|part| part.live_objects())
            .unwrap_or_default();
        // Fisher-Yates under the pinned stream.
        for i in (1..objs.len()).rev() {
            objs.swap(i, rng.gen_range(0..i + 1));
        }
        Reorg::on(db, p)
            .order(MigrationOrder::Priority(objs))
            .run()
            .expect("scramble reorganization completes");
    }
}

/// Run the loop. Every stage is deterministic given the params seed except
/// the wall-clock windows themselves.
pub fn run_locality(opts: &LocalityOptions) -> LocalityResult {
    let params = params(opts);
    let db = Arc::new(Database::new(StoreConfig::paper_experiment()));
    let info = Arc::new(build_graph(&db, &params).expect("graph builds"));

    // Decay the fresh creation-order placement before anything is measured.
    fragment(&db, &info.data_partitions, params.seed);

    // Page-grained cache: a handful of frames, so walks that hop across
    // many pages thrash and walks within a packed cluster do not. Misses
    // pay a device penalty serialized on one permit, like a disk arm.
    let model = Arc::new(PagedCpuModel::new(
        CpuModel::new(4, Duration::from_micros(5)),
        8,
        Duration::from_micros(150),
    ));
    db.set_cpu_model(Some(Arc::clone(&model) as Arc<dyn brahma::CpuCharge>));

    // --- Observe (and pre-measure): the same window does both. ---
    let stats = Arc::new(TraversalStats::new());
    let handle = start_workload_observed(
        Arc::clone(&db),
        Arc::clone(&info),
        &params,
        Some(Arc::clone(&stats) as Arc<dyn EdgeObserver + Send + Sync>),
    );
    std::thread::sleep(window(opts));
    let pre_metrics = handle.stop_and_join();
    let pre = LocalityWindow {
        ops_per_sec: pre_metrics.summarize().throughput_tps,
        p99_us: p99(&pre_metrics),
        committed: pre_metrics.summarize().committed,
        hit_rate: model.hit_rate(),
    };
    let edges = stats.edges();

    // --- Plan + reorganize: stats-driven, one partition at a time. ---
    // The reorganization itself runs outside the CPU model — it is the
    // maintenance action, not the traffic being priced.
    db.set_cpu_model(None);
    let mut mapping: HashMap<PhysAddr, PhysAddr> = HashMap::new();
    let mut planned_cost = 0.0;
    let mut migrated = 0u64;
    for &p in &info.data_partitions {
        let source = StatsGreedy::new(&*stats);
        let outcome = Reorg::on(&db, p)
            .plan_from(source)
            .run()
            .expect("stats-driven reorganization completes");
        migrated += outcome.migrated() as u64;
        if let Some(score) = outcome.score {
            planned_cost += score.planned_cost;
        }
        mapping.extend(outcome.mapping);
    }

    // Score the observed edges under the old and the actually-achieved
    // placement. Cross-partition edges cost the same on both sides (the
    // relocation compacts in place), so the delta is pure clustering.
    let cost = CostModel::default();
    let identity_cost = cost.identity_cost(&edges);
    let achieved_cost = cost.placement_cost(&edges, |a| {
        let landed = mapping.get(&a).copied().unwrap_or(a);
        (landed.partition(), landed.page())
    });

    // --- Measure: same seeded mix, cold cache, new placement. ---
    model.reset();
    db.set_cpu_model(Some(Arc::clone(&model) as Arc<dyn brahma::CpuCharge>));
    let handle = start_workload(Arc::clone(&db), Arc::clone(&info), &params);
    std::thread::sleep(window(opts));
    let post_metrics = handle.stop_and_join();
    let post = LocalityWindow {
        ops_per_sec: post_metrics.summarize().throughput_tps,
        p99_us: p99(&post_metrics),
        committed: post_metrics.summarize().committed,
        hit_rate: model.hit_rate(),
    };

    LocalityResult {
        pre,
        post,
        identity_cost,
        planned_cost,
        achieved_cost,
        migrated,
        edges_recorded: stats.recorded(),
        edges_distinct: edges.len() as u64,
    }
}

fn p99(metrics: &workload::Metrics) -> u64 {
    let h = obs::Histogram::new();
    for &us in &metrics.response_us {
        h.record_us(us);
    }
    h.quantile_us(0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_improves_placement_cost() {
        let r = run_locality(&LocalityOptions { quick: true });
        assert!(r.pre.committed > 0 && r.post.committed > 0);
        assert!(r.edges_recorded > 0, "observation window saw no edges");
        assert!(r.migrated > 0, "stats-driven reorganizations migrated nothing");
        assert!(
            r.achieved_cost < r.identity_cost,
            "achieved {} must beat fragmented {}",
            r.achieved_cost,
            r.identity_cost
        );
        assert!(r.achieved_improvement() > 0.0);
    }
}
