//! Perf trajectory: the falsifiable "is it faster now?" record.
//!
//! Every PR that claims a performance win regenerates `BENCH_<n>.json` at
//! the repo root with `cargo run -p bench --release --bin paper_figures --
//! trajectory`. The file captures a fixed cell matrix — MPL {8, 30, 60} ×
//! {NR, IRA-serial, IRA-4-workers} — with throughput, reorganization
//! wall-clock, tail walker latency (p99/p99.9 from
//! [`obs::Histogram::quantile_us`]), and the executor's retry / defer /
//! throttle / steal counters, plus a workload fingerprint so numbers are
//! only ever compared against the same workload. The comparator diffs a
//! fresh run against the newest prior `BENCH_*.json` and prints
//! regressions (see [`REGRESSION_RULE`]), so "faster" is a diff anyone can
//! re-run, not a claim in a commit message.
//!
//! The JSON is written and read by hand here: the workspace `serde` is a
//! no-op shim (offline build), so derive magic would silently produce
//! nothing.

use crate::locality::{run_locality, LocalityOptions, LocalityResult};
use crate::runner::{run_cell, Algo, CellConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;
use workload::WorkloadParams;

/// Bump when a field is added/renamed/re-unitted. The comparator refuses
/// to diff across schema versions. The optional `"locality"` object (the
/// closed clustering loop, see [`crate::locality`]) is additive: files
/// without it still validate and compare.
pub const SCHEMA_VERSION: u64 = 1;

/// The regression rule the comparator applies to same-fingerprint runs:
/// throughput must not drop by more than 10%, and reorganization
/// wall-clock and p99/p99.9 walker latency must not rise by more than 25%
/// (tail quantiles are bucket upper bounds, so small wobbles are expected;
/// a bucket boundary is a factor of two).
pub const REGRESSION_RULE: &str =
    "ops/s -10%, reorg wall-clock +25%, p99/p99.9 latency +25%";

const MPLS: [usize; 3] = [8, 30, 60];

/// The three systems of the matrix. `IRA-serial` runs the migration queue
/// on one worker; `IRA-4w` drains conflict-disjoint waves on four.
const MODES: [(&str, Algo, usize); 3] = [
    ("NR", Algo::Nr, 0),
    ("IRA-serial", Algo::Ira, 1),
    ("IRA-4w", Algo::Ira, 4),
];

#[derive(Debug, Clone, Copy)]
pub struct TrajectoryOptions {
    /// Shrink the workload for a CI smoke run. Quick runs are fingerprinted
    /// as such and never compared against full runs.
    pub quick: bool,
}

/// Workload identity: two trajectory files are comparable only when these
/// match (MPL varies per cell and is part of the cell key instead).
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    pub quick: bool,
    /// `"mem"` (default, the paper's memory-resident store) or `"file"`
    /// (`TRAJ_FILE_BACKEND=1`: durable file backend, real fsyncs priced
    /// into every commit). Runs with different backends never diff.
    pub backend: &'static str,
    pub num_partitions: u64,
    pub objs_per_partition: u64,
    pub ops_per_trans: u64,
    pub update_prob: f64,
    pub seed: u64,
}

/// One cell of the matrix.
#[derive(Debug, Clone)]
pub struct TrajCell {
    pub mpl: usize,
    pub mode: &'static str,
    pub ops_per_sec: f64,
    /// Reorganization wall-clock in seconds (0 for NR).
    pub reorg_secs: f64,
    /// Tail walker response times (µs) from `obs::Histogram::quantile_us`.
    pub p99_us: u64,
    pub p999_us: u64,
    pub committed: u64,
    pub aborted_attempts: u64,
    pub migrated: u64,
    /// Executor health counters: batch retries, objects deferred to the
    /// serial tail, throttle pauses, components stolen between workers.
    pub retries: u64,
    pub deferred: u64,
    pub throttle_pauses: u64,
    pub steals: u64,
    pub lock_timeouts: u64,
}

#[derive(Debug, Clone)]
pub struct Trajectory {
    pub fingerprint: Fingerprint,
    pub cells: Vec<TrajCell>,
    /// The closed clustering loop (observe → plan → reorganize → measure),
    /// run once per trajectory.
    pub locality: Option<LocalityResult>,
}

fn base_params(opts: &TrajectoryOptions) -> WorkloadParams {
    // Full mode runs a third of the paper's partition size so the whole
    // matrix finishes in minutes rather than tens of minutes; the
    // fingerprint records the choice, so runs stay comparable.
    WorkloadParams {
        objs_per_partition: if opts.quick { 300 } else { 1020 },
        ..WorkloadParams::default()
    }
}

/// Run the full matrix. Each cell is an independent database + workload;
/// the reorganizing cells measure until the reorganization completes, NR
/// measures a fixed window.
pub fn run_trajectory(opts: &TrajectoryOptions) -> Trajectory {
    let params = base_params(opts);
    let file_backend = brahma::env_cfg::traj_file_backend();
    let fingerprint = Fingerprint {
        quick: opts.quick,
        backend: if file_backend { "file" } else { "mem" },
        num_partitions: params.num_partitions as u64,
        objs_per_partition: params.objs_per_partition as u64,
        ops_per_trans: params.ops_per_trans as u64,
        update_prob: params.update_prob,
        seed: params.seed,
    };
    let mut cells = Vec::new();
    for mpl in MPLS {
        for (mode, algo, workers) in MODES {
            eprintln!("  [trajectory mpl={mpl} {mode}]");
            let mut cfg = CellConfig::paper(algo);
            cfg.params = params.clone();
            cfg.params.mpl = mpl;
            cfg.nr_window = if opts.quick {
                Duration::from_millis(400)
            } else {
                Duration::from_secs(3)
            };
            // Four virtual CPUs: with the paper's single CPU the model
            // serializes walkers and migrators alike, and the 4-worker
            // cell could never beat the serial one.
            cfg.cpu_capacity = 4;
            if workers > 0 {
                cfg.ira.workers = workers;
            }
            if workers > 1 {
                // Multi-worker cells plan parent-group waves: components
                // sharing an external parent land on one worker, which
                // acquires that anchor once per batch instead of once per
                // component (the MPL-60 contention fix).
                cfg.ira.order = ira::MigrationOrder::ParentGroup;
            }
            let cell_dir = file_backend.then(|| {
                std::env::temp_dir().join(format!(
                    "brahma-traj-{}-{mpl}-{mode}",
                    std::process::id()
                ))
            });
            if let Some(dir) = &cell_dir {
                // Durable cell: real fsyncs on the group-commit path
                // replace the simulated flush latency.
                let _ = std::fs::remove_dir_all(dir);
                cfg.store.data_dir = Some(dir.clone());
                cfg.store.commit_flush_latency = Duration::ZERO;
            }
            let r = run_cell(&cfg);
            if let Some(dir) = &cell_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            cells.push(TrajCell {
                mpl,
                mode,
                ops_per_sec: r.summary.throughput_tps,
                reorg_secs: r.reorg_secs.unwrap_or(0.0),
                p99_us: r.latency_p99_us,
                p999_us: r.latency_p999_us,
                committed: r.summary.committed,
                aborted_attempts: r.summary.aborted_attempts,
                migrated: r.migrated as u64,
                retries: r.counters.get("ira.retries"),
                deferred: r.counters.get("ira.deferred"),
                throttle_pauses: r.counters.get("ira.throttle.pauses"),
                steals: r.counters.get("db.reorg_wave_steals"),
                lock_timeouts: r.lock_timeouts,
            });
        }
    }
    eprintln!("  [trajectory locality loop]");
    let locality = Some(run_locality(&LocalityOptions { quick: opts.quick }));
    Trajectory {
        fingerprint,
        cells,
        locality,
    }
}

// ------------------------------------------------------------ JSON out --

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Inf; clamp to 0 (only reachable from a zero-length
    // measurement window).
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push('0');
    }
}

impl Trajectory {
    /// Serialize; `bench_index` is the `<n>` of the target `BENCH_<n>.json`.
    pub fn to_json(&self, bench_index: u64) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n");
        let _ = writeln!(o, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(o, "  \"bench_index\": {bench_index},");
        o.push_str("  \"fingerprint\": {");
        let f = &self.fingerprint;
        let _ = write!(
            o,
            "\"quick\": {}, \"backend\": \"{}\", \"num_partitions\": {}, \
             \"objs_per_partition\": {}, \"ops_per_trans\": {}, \"update_prob\": ",
            f.quick, f.backend, f.num_partitions, f.objs_per_partition, f.ops_per_trans
        );
        push_f64(&mut o, f.update_prob);
        let _ = writeln!(o, ", \"seed\": {}}},", f.seed);
        o.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"mpl\": {}, \"mode\": \"{}\", \"ops_per_sec\": ",
                c.mpl, c.mode
            );
            push_f64(&mut o, c.ops_per_sec);
            o.push_str(", \"reorg_secs\": ");
            push_f64(&mut o, c.reorg_secs);
            let _ = write!(
                o,
                ", \"p99_us\": {}, \"p999_us\": {}, \"committed\": {}, \
                 \"aborted_attempts\": {}, \"migrated\": {}, \"retries\": {}, \
                 \"deferred\": {}, \"throttle_pauses\": {}, \"steals\": {}, \
                 \"lock_timeouts\": {}}}",
                c.p99_us,
                c.p999_us,
                c.committed,
                c.aborted_attempts,
                c.migrated,
                c.retries,
                c.deferred,
                c.throttle_pauses,
                c.steals,
                c.lock_timeouts
            );
            o.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        o.push_str("  ]");
        if let Some(l) = &self.locality {
            o.push_str(",\n  \"locality\": {\n");
            for (label, w) in [("pre", &l.pre), ("post", &l.post)] {
                let _ = write!(o, "    \"{label}\": {{\"ops_per_sec\": ");
                push_f64(&mut o, w.ops_per_sec);
                let _ = write!(
                    o,
                    ", \"p99_us\": {}, \"committed\": {}, \"hit_rate\": ",
                    w.p99_us, w.committed
                );
                push_f64(&mut o, w.hit_rate);
                o.push_str("},\n");
            }
            o.push_str("    \"identity_cost\": ");
            push_f64(&mut o, l.identity_cost);
            o.push_str(", \"planned_cost\": ");
            push_f64(&mut o, l.planned_cost);
            o.push_str(", \"achieved_cost\": ");
            push_f64(&mut o, l.achieved_cost);
            let _ = write!(
                o,
                ",\n    \"migrated\": {}, \"edges_recorded\": {}, \"edges_distinct\": {}\n  }}",
                l.migrated, l.edges_recorded, l.edges_distinct
            );
        }
        o.push_str("\n}\n");
        o
    }
}

// ------------------------------------------------------------- JSON in --

/// Minimal JSON value — just enough to read our own trajectory files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key)?.num().map(|n| n as u64)
    }

    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key)?.num()
    }

    pub fn str_of(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Recursive-descent parser for the subset of JSON the writer above emits
/// (standard string escapes, no scientific notation in practice but
/// accepted anyway). Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(s);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("dangling escape")?;
                s.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                });
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unexpected end of string")?;
                s.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

// ----------------------------------------------------------- validation --

/// Structural validation of an emitted trajectory file — the CI smoke
/// gate. Checks the schema version, that every cell of the matrix is
/// present with every key, that tail quantiles are monotone
/// (p99 ≤ p99.9), and that every cell actually measured something
/// (committed > 0, and reorganizing cells migrated > 0 objects).
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.u64_of("schema_version") {
        Some(SCHEMA_VERSION) => {}
        other => return Err(format!("schema_version {other:?} != {SCHEMA_VERSION}")),
    }
    doc.get("fingerprint")
        .ok_or("missing fingerprint")?
        .u64_of("objs_per_partition")
        .ok_or("fingerprint missing objs_per_partition")?;
    let Some(Json::Arr(cells)) = doc.get("cells") else {
        return Err("missing cells array".into());
    };
    let expected = MPLS.len() * MODES.len();
    if cells.len() != expected {
        return Err(format!("{} cells, expected {expected}", cells.len()));
    }
    for c in cells {
        let mpl = c.u64_of("mpl").ok_or("cell missing mpl")?;
        let mode = c.str_of("mode").ok_or("cell missing mode")?;
        let tag = format!("mpl={mpl} {mode}");
        for key in [
            "p99_us",
            "p999_us",
            "committed",
            "aborted_attempts",
            "migrated",
            "retries",
            "deferred",
            "throttle_pauses",
            "steals",
            "lock_timeouts",
        ] {
            c.u64_of(key).ok_or(format!("{tag}: missing {key}"))?;
        }
        for key in ["ops_per_sec", "reorg_secs"] {
            c.f64_of(key).ok_or(format!("{tag}: missing {key}"))?;
        }
        if c.u64_of("p99_us") > c.u64_of("p999_us") {
            return Err(format!("{tag}: p99 > p99.9"));
        }
        if c.u64_of("committed") == Some(0) {
            return Err(format!("{tag}: no committed transactions"));
        }
        if mode.starts_with("IRA") {
            if c.u64_of("migrated") == Some(0) {
                return Err(format!("{tag}: reorganizing cell migrated nothing"));
            }
            if c.f64_of("reorg_secs") <= Some(0.0) {
                return Err(format!("{tag}: reorganizing cell took no time"));
            }
        }
    }
    // The locality object is optional (additive field), but when present
    // it must be structurally complete and internally consistent.
    if let Some(l) = doc.get("locality") {
        for win in ["pre", "post"] {
            let w = l.get(win).ok_or(format!("locality: missing {win}"))?;
            w.f64_of("ops_per_sec")
                .ok_or(format!("locality.{win}: missing ops_per_sec"))?;
            w.u64_of("p99_us").ok_or(format!("locality.{win}: missing p99_us"))?;
            if w.u64_of("committed") == Some(0) {
                return Err(format!("locality.{win}: no committed transactions"));
            }
            let rate = w
                .f64_of("hit_rate")
                .ok_or(format!("locality.{win}: missing hit_rate"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("locality.{win}: hit_rate {rate} out of [0,1]"));
            }
        }
        for key in ["identity_cost", "planned_cost", "achieved_cost"] {
            l.f64_of(key).ok_or(format!("locality: missing {key}"))?;
        }
        for key in ["migrated", "edges_recorded", "edges_distinct"] {
            l.u64_of(key).ok_or(format!("locality: missing {key}"))?;
        }
        if l.u64_of("migrated") == Some(0) {
            return Err("locality: stats-driven reorganization migrated nothing".into());
        }
        if l.f64_of("achieved_cost") >= l.f64_of("identity_cost") {
            return Err(format!(
                "locality: achieved cost {:?} did not improve on identity {:?}",
                l.f64_of("achieved_cost"),
                l.f64_of("identity_cost")
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------- comparator --

/// Outcome of diffing a fresh run against the newest prior file.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Human-readable per-cell delta lines, in matrix order.
    pub lines: Vec<String>,
    /// The subset that violates [`REGRESSION_RULE`].
    pub regressions: Vec<String>,
}

fn pct(old: f64, new: f64) -> f64 {
    if old.abs() < 1e-12 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

/// Diff `current` (just produced) against `prior` (parsed from the newest
/// earlier `BENCH_*.json`). Cells are matched by (mpl, mode); cells
/// missing on either side are reported but never counted as regressions.
/// Runs with different fingerprints (including quick vs full) are
/// incomparable: the comparison says so and stays empty.
pub fn compare(prior: &Json, current: &Trajectory) -> Comparison {
    let mut cmp = Comparison::default();
    if prior.u64_of("schema_version") != Some(SCHEMA_VERSION) {
        cmp.lines.push(format!(
            "prior file has schema_version {:?}; not comparable to {SCHEMA_VERSION}",
            prior.u64_of("schema_version")
        ));
        return cmp;
    }
    let same_fingerprint = prior.get("fingerprint").is_some_and(|f| {
        f.get("quick") == Some(&Json::Bool(current.fingerprint.quick))
            // Files written before the backend field existed were all
            // memory-resident runs.
            && f.str_of("backend").unwrap_or("mem") == current.fingerprint.backend
            && f.u64_of("objs_per_partition")
                == Some(current.fingerprint.objs_per_partition)
            && f.u64_of("num_partitions") == Some(current.fingerprint.num_partitions)
            && f.u64_of("seed") == Some(current.fingerprint.seed)
    });
    if !same_fingerprint {
        cmp.lines
            .push("prior file ran a different workload fingerprint; skipping diff".into());
        return cmp;
    }
    let empty = Vec::new();
    let prior_cells = match prior.get("cells") {
        Some(Json::Arr(cells)) => cells,
        _ => &empty,
    };
    for c in &current.cells {
        let old = prior_cells.iter().find(|p| {
            p.u64_of("mpl") == Some(c.mpl as u64) && p.str_of("mode") == Some(c.mode)
        });
        let Some(old) = old else {
            cmp.lines
                .push(format!("mpl={} {}: new cell (no prior)", c.mpl, c.mode));
            continue;
        };
        let tag = format!("mpl={} {}", c.mpl, c.mode);
        let ops_old = old.f64_of("ops_per_sec").unwrap_or(0.0);
        let d_ops = pct(ops_old, c.ops_per_sec);
        let mut line = format!(
            "{tag}: ops/s {ops_old:.0} -> {:.0} ({d_ops:+.1}%)",
            c.ops_per_sec
        );
        if c.mode != "NR" {
            let reorg_old = old.f64_of("reorg_secs").unwrap_or(0.0);
            let d_reorg = pct(reorg_old, c.reorg_secs);
            let _ = write!(
                line,
                ", reorg {reorg_old:.2}s -> {:.2}s ({d_reorg:+.1}%)",
                c.reorg_secs
            );
            if d_reorg > 25.0 {
                cmp.regressions
                    .push(format!("{tag}: reorg wall-clock {d_reorg:+.1}%"));
            }
        }
        let p99_old = old.u64_of("p99_us").unwrap_or(0);
        let d_p99 = pct(p99_old as f64, c.p99_us as f64);
        let p999_old = old.u64_of("p999_us").unwrap_or(0);
        let d_p999 = pct(p999_old as f64, c.p999_us as f64);
        let _ = write!(
            line,
            ", p99 {p99_old}us -> {}us ({d_p99:+.1}%), p99.9 {p999_old}us -> {}us ({d_p999:+.1}%)",
            c.p99_us, c.p999_us
        );
        if d_ops < -10.0 {
            cmp.regressions.push(format!("{tag}: ops/s {d_ops:+.1}%"));
        }
        if d_p99 > 25.0 {
            cmp.regressions.push(format!("{tag}: p99 {d_p99:+.1}%"));
        }
        if d_p999 > 25.0 {
            cmp.regressions.push(format!("{tag}: p99.9 {d_p999:+.1}%"));
        }
        cmp.lines.push(line);
    }
    // Locality loop: diff only when both sides ran it (the field is
    // additive — prior files may predate it).
    match (prior.get("locality"), &current.locality) {
        (Some(old), Some(new)) => {
            let ops_old = old
                .get("post")
                .and_then(|w| w.f64_of("ops_per_sec"))
                .unwrap_or(0.0);
            let d_ops = pct(ops_old, new.post.ops_per_sec);
            let gain_old = old.f64_of("identity_cost").unwrap_or(0.0)
                - old.f64_of("achieved_cost").unwrap_or(0.0);
            let gain_new = new.identity_cost - new.achieved_cost;
            cmp.lines.push(format!(
                "locality: post ops/s {ops_old:.0} -> {:.0} ({d_ops:+.1}%), \
                 cost gain {gain_old:.0} -> {gain_new:.0}, hit rate {:.2} -> {:.2}",
                new.post.ops_per_sec,
                old.get("post").and_then(|w| w.f64_of("hit_rate")).unwrap_or(0.0),
                new.post.hit_rate,
            ));
            if d_ops < -10.0 {
                cmp.regressions
                    .push(format!("locality: post-reorg ops/s {d_ops:+.1}%"));
            }
        }
        (None, Some(_)) => cmp
            .lines
            .push("locality: new section (no prior to compare)".into()),
        (Some(_), None) => cmp.lines.push(
            "locality: prior file has the section but this run did not produce one; \
             cell diff above is still valid"
                .into(),
        ),
        (None, None) => {}
    }
    Comparison {
        lines: cmp.lines,
        regressions: cmp.regressions,
    }
}

// ------------------------------------------------------------ file mgmt --

/// All `BENCH_<n>.json` files in `dir`, sorted by `n` ascending.
pub fn bench_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((n, entry.path()));
        }
    }
    out.sort_by_key(|(n, _)| *n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trajectory {
        let mut cells = Vec::new();
        for mpl in MPLS {
            for (mode, _, _) in MODES {
                cells.push(TrajCell {
                    mpl,
                    mode,
                    ops_per_sec: 100.0 + mpl as f64,
                    reorg_secs: if mode == "NR" { 0.0 } else { 2.5 },
                    p99_us: 4_000,
                    p999_us: 16_000,
                    committed: 500,
                    aborted_attempts: 3,
                    migrated: if mode == "NR" { 0 } else { 1020 },
                    retries: 1,
                    deferred: 2,
                    throttle_pauses: 0,
                    steals: if mode == "IRA-4w" { 4 } else { 0 },
                    lock_timeouts: 5,
                });
            }
        }
        Trajectory {
            fingerprint: Fingerprint {
                quick: true,
                backend: "mem",
                num_partitions: 8,
                objs_per_partition: 510,
                ops_per_trans: 10,
                update_prob: 0.2,
                seed: 42,
            },
            cells,
            locality: None,
        }
    }

    fn sample_locality() -> crate::locality::LocalityResult {
        use crate::locality::{LocalityResult, LocalityWindow};
        LocalityResult {
            pre: LocalityWindow {
                ops_per_sec: 80.0,
                p99_us: 9_000,
                committed: 300,
                hit_rate: 0.55,
            },
            post: LocalityWindow {
                ops_per_sec: 120.0,
                p99_us: 5_000,
                committed: 460,
                hit_rate: 0.85,
            },
            identity_cost: 4_000.0,
            planned_cost: 900.0,
            achieved_cost: 1_100.0,
            migrated: 680,
            edges_recorded: 12_000,
            edges_distinct: 700,
        }
    }

    #[test]
    fn json_round_trips_and_validates() {
        let t = sample();
        let text = t.to_json(6);
        let doc = parse_json(&text).expect("parses");
        assert_eq!(doc.u64_of("schema_version"), Some(SCHEMA_VERSION));
        assert_eq!(doc.u64_of("bench_index"), Some(6));
        validate(&doc).expect("validates");
        let Some(Json::Arr(cells)) = doc.get("cells") else {
            panic!("cells");
        };
        assert_eq!(cells.len(), 9);
        assert_eq!(cells[0].str_of("mode"), Some("NR"));
        assert_eq!(cells[0].u64_of("p999_us"), Some(16_000));
    }

    #[test]
    fn locality_section_round_trips_validates_and_compares() {
        let mut t = sample();
        t.locality = Some(sample_locality());
        let text = t.to_json(7);
        let doc = parse_json(&text).expect("parses");
        validate(&doc).expect("validates with locality");
        let l = doc.get("locality").expect("locality present");
        assert_eq!(l.u64_of("migrated"), Some(680));
        assert_eq!(l.get("post").unwrap().u64_of("p99_us"), Some(5_000));
        assert_eq!(l.f64_of("achieved_cost"), Some(1_100.0));

        // A file without the section still validates (additive field) and
        // the comparator reports it as new rather than diffing.
        let old = sample();
        let prior = parse_json(&old.to_json(6)).unwrap();
        validate(&prior).expect("validates without locality");
        let cmp = compare(&prior, &t);
        assert!(cmp.lines.iter().any(|l| l.contains("locality: new section")));
        assert!(cmp.regressions.is_empty());

        // Both sides present: diffed, and a post-reorg throughput collapse
        // is a regression.
        let prior = parse_json(&text).unwrap();
        let mut worse = t.clone();
        worse.locality.as_mut().unwrap().post.ops_per_sec = 30.0;
        let cmp = compare(&prior, &worse);
        assert!(cmp.lines.iter().any(|l| l.starts_with("locality: post ops/s")));
        assert!(cmp
            .regressions
            .iter()
            .any(|r| r.contains("post-reorg ops/s")));

        // A locality section that claims no improvement fails validation.
        let no_gain = text.replace("\"achieved_cost\": 1100.000", "\"achieved_cost\": 4100.000");
        let bad = parse_json(&no_gain).unwrap();
        assert!(validate(&bad)
            .unwrap_err()
            .contains("did not improve"));
    }

    #[test]
    fn comparator_diffs_across_missing_locality_sections_both_ways() {
        // Newer direction: prior lacks the section (BENCH_5/6-era file),
        // current has it — the cell diff must run, nothing regresses, and
        // the section is announced as new.
        let old = sample();
        let prior = parse_json(&old.to_json(6)).unwrap();
        let mut new = sample();
        new.locality = Some(sample_locality());
        let cmp = compare(&prior, &new);
        assert_eq!(
            cmp.lines.iter().filter(|l| l.starts_with("mpl=")).count(),
            9,
            "every cell still diffs"
        );
        assert!(cmp.lines.iter().any(|l| l.contains("locality: new section")));
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);

        // Older direction: prior has the section, current does not — the
        // diff must not refuse or fall silent; it names the absence.
        let mut old = sample();
        old.locality = Some(sample_locality());
        let prior = parse_json(&old.to_json(7)).unwrap();
        let new = sample();
        let cmp = compare(&prior, &new);
        assert_eq!(
            cmp.lines.iter().filter(|l| l.starts_with("mpl=")).count(),
            9,
            "every cell still diffs"
        );
        assert!(
            cmp.lines
                .iter()
                .any(|l| l.contains("did not produce one")),
            "{:?}",
            cmp.lines
        );
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn validator_rejects_non_monotone_quantiles_and_empty_cells() {
        let t = sample();
        let doc = parse_json(&t.to_json(1)).unwrap();
        // Break p99 monotonicity in a copy of the text.
        let broken = t.to_json(1).replace("\"p999_us\": 16000", "\"p999_us\": 10");
        let bad = parse_json(&broken).unwrap();
        assert!(validate(&doc).is_ok());
        assert!(validate(&bad).unwrap_err().contains("p99 > p99.9"));
        let no_commits = t
            .to_json(1)
            .replace("\"committed\": 500", "\"committed\": 0");
        let bad = parse_json(&no_commits).unwrap();
        assert!(validate(&bad).unwrap_err().contains("no committed"));
    }

    #[test]
    fn comparator_flags_regressions_but_not_improvements() {
        let old = sample();
        let prior = parse_json(&old.to_json(5)).unwrap();
        let mut new = sample();
        for c in &mut new.cells {
            c.ops_per_sec *= 1.5; // improvement
            c.reorg_secs *= 0.5; // improvement
        }
        let cmp = compare(&prior, &new);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert_eq!(cmp.lines.len(), 9);

        let mut worse = sample();
        for c in &mut worse.cells {
            c.ops_per_sec *= 0.5;
            c.p999_us *= 10;
        }
        let cmp = compare(&prior, &worse);
        assert!(cmp.regressions.iter().any(|r| r.contains("ops/s")));
        assert!(cmp.regressions.iter().any(|r| r.contains("p99.9")));
    }

    #[test]
    fn comparator_refuses_mismatched_fingerprints() {
        let old = sample();
        let prior = parse_json(&old.to_json(5)).unwrap();
        let mut full = sample();
        full.fingerprint.quick = false;
        let cmp = compare(&prior, &full);
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.lines.len(), 1);
        assert!(cmp.lines[0].contains("different workload fingerprint"));
    }

    #[test]
    fn bench_files_sort_numerically() {
        let dir = std::env::temp_dir().join(format!("traj-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [10u64, 2, 6] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "").unwrap();
        let files: Vec<u64> = bench_files(&dir).into_iter().map(|(n, _)| n).collect();
        assert_eq!(files, vec![2, 6, 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\"y"}}"#)
            .expect("parses");
        assert_eq!(doc.get("a"), Some(&Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(-2.5),
            Json::Bool(true),
            Json::Null,
        ])));
        assert_eq!(doc.get("b").unwrap().str_of("c"), Some("x\"y"));
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
    }
}
