//! The paper's experiments (Section 5.3), one function per figure/table,
//! plus the full-version Section 5.3.4 sweeps and the design-choice
//! ablations called out in DESIGN.md.

use crate::report::{Experiment, Row};
use crate::runner::{run_cell, Algo, CellConfig};
use brahma::RefTableMaintenance;
use ira::{IraConfig, IraVariant, MigrationOrder};
use std::time::Duration;
use workload::WorkloadParams;

/// Global harness options.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Shrink the workload and the sweeps for a fast smoke run.
    pub quick: bool,
}

impl HarnessOptions {
    fn base_params(&self) -> WorkloadParams {
        if self.quick {
            WorkloadParams {
                objs_per_partition: 1020,
                ..WorkloadParams::default()
            }
        } else {
            WorkloadParams::default()
        }
    }

    fn nr_window(&self) -> Duration {
        if self.quick {
            Duration::from_secs(2)
        } else {
            Duration::from_secs(5)
        }
    }

    fn cell(&self, algo: Algo) -> CellConfig {
        let mut cfg = CellConfig::paper(algo);
        cfg.params = self.base_params();
        cfg.nr_window = self.nr_window();
        cfg
    }
}

const ALGOS: [Algo; 3] = [Algo::Nr, Algo::Ira, Algo::Pqr];

/// One swept configuration tweak.
type Tweak = Box<dyn Fn(&mut CellConfig)>;

fn sweep(
    opts: &HarnessOptions,
    title: &str,
    x_name: &str,
    xs: Vec<(String, Tweak)>,
) -> Experiment {
    let mut rows = Vec::new();
    for (label, tweak) in xs {
        eprintln!("  [{x_name}={label}]");
        let mut cells = Vec::new();
        for algo in ALGOS {
            let mut cfg = opts.cell(algo);
            tweak(&mut cfg);
            cells.push(run_cell(&cfg));
        }
        rows.push(Row {
            x_label: label,
            cells,
        });
    }
    Experiment {
        title: title.into(),
        x_name: x_name.into(),
        rows,
    }
}

/// Figures 6 and 7: throughput and average response time as MPL varies.
pub fn exp_mpl(opts: &HarnessOptions) -> Experiment {
    let mpls: Vec<usize> = if opts.quick {
        vec![1, 5, 15, 30]
    } else {
        vec![1, 2, 5, 10, 20, 30, 40, 50, 60]
    };
    sweep(
        opts,
        "Figures 6/7: MPL scaleup (throughput, avg response time)",
        "MPL",
        mpls.into_iter()
            .map(|m| {
                let f: Box<dyn Fn(&mut CellConfig)> =
                    Box::new(move |cfg: &mut CellConfig| cfg.params.mpl = m);
                (m.to_string(), f)
            })
            .collect(),
    )
}

/// Table 2: analysis of response times at MPL 30.
pub fn exp_table2(opts: &HarnessOptions) -> Experiment {
    let mut cells = Vec::new();
    for algo in ALGOS {
        eprintln!("  [table2 {}]", algo.name());
        let cfg = opts.cell(algo);
        cells.push(run_cell(&cfg));
    }
    Experiment {
        title: "Table 2: Analysis of Response Times (MPL 30)".into(),
        x_name: "MPL".into(),
        rows: vec![Row {
            x_label: "30".into(),
            cells,
        }],
    }
}

/// Figures 8 and 9: throughput and average response time as the partition
/// size (NUMOBJS) varies.
pub fn exp_partition_size(opts: &HarnessOptions) -> Experiment {
    let sizes: Vec<usize> = if opts.quick {
        vec![510, 1020, 2040]
    } else {
        // Whole clusters nearest the paper's 1000..9000 sweep.
        vec![1020, 2040, 4080, 6120, 8160]
    };
    sweep(
        opts,
        "Figures 8/9: partition size scaleup",
        "NUMOBJS",
        sizes
            .into_iter()
            .map(|n| {
                let f: Box<dyn Fn(&mut CellConfig)> =
                    Box::new(move |cfg: &mut CellConfig| cfg.params.objs_per_partition = n);
                (n.to_string(), f)
            })
            .collect(),
    )
}

/// Figures 10 and 11: throughput and average response time as the update
/// probability varies.
pub fn exp_update_prob(opts: &HarnessOptions) -> Experiment {
    let probs: Vec<f64> = if opts.quick {
        vec![0.0, 0.5, 1.0]
    } else {
        vec![0.0, 0.2, 0.5, 0.8, 1.0]
    };
    sweep(
        opts,
        "Figures 10/11: update probability",
        "UPDPROB",
        probs
            .into_iter()
            .map(|p| {
                let f: Box<dyn Fn(&mut CellConfig)> =
                    Box::new(move |cfg: &mut CellConfig| cfg.params.update_prob = p);
                (format!("{p:.1}"), f)
            })
            .collect(),
    )
}

/// Section 5.3.4: GLUEFACTOR sweep (full version of the paper).
pub fn exp_glue(opts: &HarnessOptions) -> Experiment {
    // Three points cover the paper's spread; cheap enough for --quick too.
    let glues: Vec<f64> = vec![0.01, 0.05, 0.2];
    sweep(
        opts,
        "Section 5.3.4: glue factor (inter-partition references)",
        "GLUE",
        glues
            .into_iter()
            .map(|g| {
                let f: Box<dyn Fn(&mut CellConfig)> =
                    Box::new(move |cfg: &mut CellConfig| cfg.params.glue_factor = g);
                (format!("{g:.2}"), f)
            })
            .collect(),
    )
}

/// Section 5.3.4: transaction path length (OPSPERTRANS) sweep.
pub fn exp_ops_per_trans(opts: &HarnessOptions) -> Experiment {
    // Three points cover the paper's spread; cheap enough for --quick too.
    let opss: Vec<usize> = vec![2, 8, 32];
    sweep(
        opts,
        "Section 5.3.4: transaction path length",
        "OPS",
        opss.into_iter()
            .map(|o| {
                let f: Box<dyn Fn(&mut CellConfig)> =
                    Box::new(move |cfg: &mut CellConfig| cfg.params.ops_per_trans = o);
                (o.to_string(), f)
            })
            .collect(),
    )
}

/// Section 5.3.4: number of partitions sweep.
pub fn exp_num_partitions(opts: &HarnessOptions) -> Experiment {
    let ns: Vec<usize> = if opts.quick {
        vec![2, 10, 20]
    } else {
        vec![5, 10, 20]
    };
    sweep(
        opts,
        "Section 5.3.4: number of partitions",
        "NPARTS",
        ns.into_iter()
            .map(|n| {
                let f: Box<dyn Fn(&mut CellConfig)> =
                    Box::new(move |cfg: &mut CellConfig| cfg.params.num_partitions = n);
                (n.to_string(), f)
            })
            .collect(),
    )
}

/// Section 5.3.4: PQR measured over the duration IRA needs. The paper found
/// the throughput difference never exceeded 3%.
pub fn exp_equal_duration(opts: &HarnessOptions) -> Experiment {
    // First measure IRA's duration at the defaults.
    eprintln!("  [eqdur IRA]");
    let ira = run_cell(&opts.cell(Algo::Ira));
    let window = Duration::from_secs_f64(ira.reorg_secs.unwrap_or(1.0));
    // Then PQR and NR measured over the same window.
    eprintln!("  [eqdur PQR over IRA window]");
    let mut pqr_cfg = opts.cell(Algo::Pqr);
    pqr_cfg.measure_window = Some(window);
    let pqr = run_cell(&pqr_cfg);
    eprintln!("  [eqdur NR over IRA window]");
    let mut nr_cfg = opts.cell(Algo::Nr);
    nr_cfg.nr_window = window;
    let nr = run_cell(&nr_cfg);
    Experiment {
        title: "Section 5.3.4: equal-duration comparison (window = IRA's duration)".into(),
        x_name: "window".into(),
        rows: vec![Row {
            x_label: format!("{:.1}s", window.as_secs_f64()),
            cells: vec![nr, ira, pqr],
        }],
    }
}

/// Parallel executor scaling: reorganization wall-clock as the migrator
/// worker count grows. The cell makes the commit-flush latency (1 ms, the
/// paper's log-force) the dominant per-batch cost and gives the box CPU
/// headroom (four virtual CPUs), so the speedup comes from what the wave
/// executor actually parallelizes: conflict-disjoint components migrating
/// concurrently, their log forces amortized by group commit. GLUEFACTOR
/// is 1.0 so every cluster's extra edge leaves the partition — the
/// reorganized partition splits into one conflict component per cluster
/// instead of gluing into a single serial component.
pub fn exp_scaling(opts: &HarnessOptions) -> Experiment {
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        eprintln!("  [scaling workers={workers}]");
        let mut cfg = opts.cell(Algo::Ira);
        cfg.params.glue_factor = 1.0;
        cfg.params.mpl = 2;
        cfg.store.commit_flush_latency = Duration::from_millis(1);
        // Every component shares one external parent (the partition's root
        // object), so worker/walker deadlocks through it are expected; a
        // short timeout makes them cheap to break instead of costing the
        // default second each.
        cfg.store.lock_timeout = Duration::from_millis(25);
        cfg.cpu_capacity = 4;
        cfg.ira.workers = workers;
        cfg.ira.batch_size = 8;
        rows.push(Row {
            x_label: workers.to_string(),
            cells: vec![run_cell(&cfg)],
        });
    }
    Experiment {
        title: "Parallel executor scaling (reorg wall-clock vs workers)".into(),
        x_name: "WORKERS".into(),
        rows,
    }
}

/// Ablations over the design choices DESIGN.md calls out. Each row is one
/// IRA configuration at the workload defaults.
pub fn exp_ablation(opts: &HarnessOptions) -> Experiment {
    let mut rows = Vec::new();
    let variants: Vec<(&str, Tweak)> = vec![
        ("basic", Box::new(|_cfg: &mut CellConfig| {})),
        (
            "two-lock",
            Box::new(|cfg: &mut CellConfig| cfg.ira.variant = IraVariant::TwoLock),
        ),
        (
            "batch=32",
            Box::new(|cfg: &mut CellConfig| cfg.ira.batch_size = 32),
        ),
        (
            "batch=32+extparent-order",
            Box::new(|cfg: &mut CellConfig| {
                cfg.ira.batch_size = 32;
                cfg.ira.order = MigrationOrder::GroupByExternalParent;
            }),
        ),
        (
            "no-trt-purge",
            Box::new(|cfg: &mut CellConfig| cfg.store.trt_purge = false),
        ),
        (
            "log-analyzer",
            Box::new(|cfg: &mut CellConfig| {
                cfg.store.maintenance = RefTableMaintenance::LogAnalyzer;
                cfg.store.wal_retain = true;
            }),
        ),
        (
            "relaxed-2pl",
            Box::new(|cfg: &mut CellConfig| cfg.store.strict_2pl = false),
        ),
    ];
    for (name, tweak) in variants {
        eprintln!("  [ablation {name}]");
        let mut cfg = opts.cell(Algo::Ira);
        tweak(&mut cfg);
        rows.push(Row {
            x_label: name.into(),
            cells: vec![run_cell(&cfg)],
        });
    }
    Experiment {
        title: "Ablations: IRA design choices (Sections 4.1-4.5)".into(),
        x_name: "variant".into(),
        rows,
    }
}

/// Everything, in the paper's order.
pub fn all_experiments(opts: &HarnessOptions) -> Vec<(&'static str, Experiment)> {
    vec![
        ("mpl", exp_mpl(opts)),
        ("table2", exp_table2(opts)),
        ("partsize", exp_partition_size(opts)),
        ("updprob", exp_update_prob(opts)),
        ("glue", exp_glue(opts)),
        ("ops", exp_ops_per_trans(opts)),
        ("nparts", exp_num_partitions(opts)),
        ("eqdur", exp_equal_duration(opts)),
        ("scaling", exp_scaling(opts)),
        ("ablation", exp_ablation(opts)),
    ]
}

/// One default IraConfig re-export used by tests.
pub fn default_ira() -> IraConfig {
    IraConfig::default()
}
