//! # Bench — the paper's Section 5 evaluation, regenerated
//!
//! This crate reruns every table and figure of *On-line Reorganization in
//! Object Databases* against this repository's implementation:
//!
//! * Figures 6/7 — MPL scaleup (throughput, average response time);
//! * Table 2 — response-time analysis at MPL 30 (avg, max, stddev);
//! * Figures 8/9 — partition-size scaleup;
//! * Figures 10/11 — update-probability sweep;
//! * Section 5.3.4 — glue factor, path length, partition count, and the
//!   equal-duration PQR comparison (full-version experiments);
//! * ablations over the design choices of Sections 4.1-4.5.
//!
//! Run with:
//!
//! ```text
//! cargo run -p bench --release --bin paper_figures -- all [--quick]
//! ```
//!
//! Results are printed as table rows and written as CSV under `results/`.
//! Criterion microbenchmarks for the substrate live in `benches/`.

pub mod experiments;
pub mod locality;
pub mod report;
pub mod runner;
pub mod trajectory;

pub use experiments::{all_experiments, HarnessOptions};
pub use locality::{run_locality, LocalityOptions, LocalityResult, LocalityWindow};
pub use report::{Experiment, Row};
pub use runner::{run_cell, Algo, CellConfig, CellResult};
pub use trajectory::{run_trajectory, Trajectory, TrajectoryOptions};
