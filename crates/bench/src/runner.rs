//! One experiment cell: a database + graph + MPL workload, with one of the
//! three systems of the paper's Section 5 running underneath:
//!
//! * **NR** — no reorganization (the workload runs undisturbed for a fixed
//!   window);
//! * **IRA** — the Incremental Reorganization Algorithm reorganizes one
//!   partition while the workload runs; the measurement window is the
//!   reorganization;
//! * **PQR** — the Partition Quiesce Reorganization baseline, same window.
//!
//! `measure_window` extends a cell past the reorganization's end — used for
//! the Section 5.3.4 equal-duration comparison, where PQR's metrics are
//! measured over the duration IRA needed.

use brahma::{Database, StoreConfig};
use ira::{IraBasic, IraConfig, IraTwoLock, IraVariant, Pqr, RelocationPlan, Reorganizer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{build_graph, start_workload, CpuModel, Summary, WorkloadParams};

/// Which system runs under the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    Nr,
    Ira,
    Pqr,
}

impl Algo {
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Nr => "NR",
            Algo::Ira => "IRA",
            Algo::Pqr => "PQR",
        }
    }
}

/// Full configuration of one cell.
#[derive(Clone)]
pub struct CellConfig {
    pub algo: Algo,
    pub params: WorkloadParams,
    pub store: StoreConfig,
    pub ira: IraConfig,
    pub plan: RelocationPlan,
    /// Virtual CPUs and per-access work (see [`CpuModel`]).
    pub cpu_capacity: usize,
    pub cpu_work: Duration,
    /// Measurement window for NR (reorganizing systems run until the
    /// reorganization completes instead).
    pub nr_window: Duration,
    /// Keep measuring for this long even after the reorganization finished
    /// (Section 5.3.4 equal-duration comparison).
    pub measure_window: Option<Duration>,
    /// Index into the data partitions of the partition to reorganize.
    pub reorg_partition: usize,
}

impl CellConfig {
    /// The paper's default cell: Table 1 workload, 1 s lock timeout,
    /// commit-flush latency for CPU/I-O overlap, two virtual CPUs.
    pub fn paper(algo: Algo) -> Self {
        CellConfig {
            algo,
            params: WorkloadParams::default(),
            store: StoreConfig::paper_experiment(),
            ira: IraConfig::default(),
            plan: RelocationPlan::CompactInPlace,
            cpu_capacity: 1,
            cpu_work: Duration::from_micros(40),
            nr_window: Duration::from_secs(5),
            measure_window: None,
            reorg_partition: 0,
        }
    }
}

/// Result of one cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    pub algo: Algo,
    pub summary: Summary,
    /// How long the reorganization itself took (None for NR).
    pub reorg_secs: Option<f64>,
    pub migrated: usize,
    /// Lock timeouts observed store-wide during the cell.
    pub lock_timeouts: u64,
    /// Tail walker response times in µs, read from an [`obs::Histogram`]
    /// fed every committed response. Log-bucketed, so each is the upper
    /// edge of its bucket clamped to the observed maximum — an upper
    /// bound, never an underestimate.
    pub latency_p99_us: u64,
    pub latency_p999_us: u64,
    /// Substrate counter deltas over the cell window: `db.*`, `lock.*`,
    /// `wal.*`, `ert.*`, `trt.*` from [`Database::obs_snapshot`], plus the
    /// reorganizer's `ira.*` / `pqr.*` keys and the workload's
    /// `workload.*` aggregates.
    pub counters: obs::Snapshot,
}

/// Run one cell to completion.
pub fn run_cell(cfg: &CellConfig) -> CellResult {
    // A cell with `store.data_dir` set runs durable: the store opens
    // through the file backend (segmented WAL, real fsync on the commit
    // path) instead of memory-resident, so the trajectory can price
    // durability (`TRAJ_FILE_BACKEND=1`).
    let db = if cfg.store.data_dir.is_some() {
        let out = brahma::storage::open(cfg.store.clone()).expect("file-backed open");
        Arc::new(out.db)
    } else {
        Arc::new(Database::new(cfg.store.clone()))
    };
    let info = Arc::new(build_graph(&db, &cfg.params).expect("graph builds"));
    // Install the CPU model only after the graph is built (construction is
    // not part of the measured system).
    db.set_cpu_model(Some(Arc::new(CpuModel::new(cfg.cpu_capacity, cfg.cpu_work))));
    // Baseline snapshot: the cell's counters are the delta over its window,
    // so graph construction does not pollute them.
    let before = db.obs_snapshot();
    let handle = start_workload(Arc::clone(&db), Arc::clone(&info), &cfg.params);

    let target = info.data_partitions[cfg.reorg_partition.min(info.data_partitions.len() - 1)];
    let started = Instant::now();
    let mut reorg_counters = obs::Snapshot::new();
    let (reorg_secs, migrated) = match cfg.algo {
        Algo::Nr => {
            std::thread::sleep(cfg.nr_window);
            (None, 0)
        }
        Algo::Ira => {
            // Dispatch through the `Reorganizer` trait, preserving the
            // cell's full IRA configuration (variant, workers, batch, ...).
            let reorganizer: Box<dyn Reorganizer> = match cfg.ira.variant {
                IraVariant::Basic => Box::new(IraBasic::new(cfg.ira.clone())),
                IraVariant::TwoLock => Box::new(IraTwoLock::new(cfg.ira.clone())),
            };
            let outcome = reorganizer
                .reorganize(&db, target, cfg.plan)
                .expect("IRA completes");
            let report = outcome.report.as_ref().expect("IRA reports");
            report.export(&mut reorg_counters);
            (Some(outcome.duration.as_secs_f64()), outcome.migrated())
        }
        Algo::Pqr => {
            let outcome = Pqr::default()
                .reorganize(&db, target, cfg.plan)
                .expect("PQR completes");
            let report = outcome.report.as_ref().expect("PQR reports");
            report.export(&mut reorg_counters);
            (Some(outcome.duration.as_secs_f64()), outcome.migrated())
        }
    };
    if let Some(window) = cfg.measure_window {
        let elapsed = started.elapsed();
        if elapsed < window {
            std::thread::sleep(window - elapsed);
        }
    }
    let metrics = handle.stop_and_join();
    let mut counters = db.obs_snapshot().diff(&before);
    counters.merge(&reorg_counters);
    metrics.export(&mut counters);
    let lock_timeouts = counters.get("lock.timeouts");
    let latency = obs::Histogram::new();
    for &us in &metrics.response_us {
        latency.record_us(us);
    }
    CellResult {
        algo: cfg.algo,
        summary: metrics.summarize(),
        reorg_secs,
        migrated,
        lock_timeouts,
        latency_p99_us: latency.quantile_us(0.99),
        latency_p999_us: latency.quantile_us(0.999),
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(algo: Algo) -> CellConfig {
        let mut cfg = CellConfig::paper(algo);
        cfg.params = WorkloadParams {
            num_partitions: 3,
            objs_per_partition: 170,
            mpl: 4,
            ..WorkloadParams::default()
        };
        cfg.store.commit_flush_latency = Duration::from_micros(50);
        cfg.cpu_work = Duration::from_micros(20);
        cfg.nr_window = Duration::from_millis(300);
        cfg
    }

    #[test]
    fn nr_cell_measures_throughput() {
        let r = run_cell(&tiny(Algo::Nr));
        assert!(r.summary.committed > 0);
        assert!(r.reorg_secs.is_none());
    }

    #[test]
    fn ira_cell_reorganizes_under_load() {
        let r = run_cell(&tiny(Algo::Ira));
        assert_eq!(r.migrated, 170);
        assert!(r.reorg_secs.unwrap() > 0.0);
        assert!(r.summary.committed > 0, "walkers made progress during IRA");
    }

    #[test]
    fn pqr_cell_reorganizes_under_load() {
        let r = run_cell(&tiny(Algo::Pqr));
        assert_eq!(r.migrated, 170);
        assert!(r.reorg_secs.unwrap() > 0.0);
    }

    #[test]
    fn equal_duration_window_extends_measurement() {
        let mut cfg = tiny(Algo::Pqr);
        cfg.measure_window = Some(Duration::from_millis(500));
        let start = Instant::now();
        let r = run_cell(&cfg);
        assert!(start.elapsed() >= Duration::from_millis(500));
        assert!(r.summary.window_s >= 0.45);
    }
}
