//! A lightweight hand-rolled item parser over the token stream: `fn`
//! items (with the enclosing `impl` type and return-type tokens),
//! `struct` field types, and a brace-match map. No external deps — this
//! is deliberately *not* a full Rust parser; DESIGN.md §17.2 documents
//! the subset and the over-approximation policy that makes the subset
//! sound for the lock-graph pass.

use crate::tokens::{Tok, TokKind};

/// One `fn` item. `body` is the token range `[open_brace, close_brace]`
/// (inclusive); trait-method signatures without bodies are not recorded.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Head identifier of the enclosing `impl` type (`impl Partition`,
    /// `impl fmt::Debug for Wal` → `Wal`), `None` for free functions.
    pub self_ty: Option<String>,
    /// Return-type token texts (between `->` and the body/`;`).
    pub ret: Vec<String>,
    pub body: Option<(usize, usize)>,
    pub line: usize,
}

/// One struct field: `struct Owner { name: … }` with the unwrapped head
/// identifier of its type (`Arc<FaultInjector>` → `FaultInjector`).
#[derive(Debug)]
pub struct FieldDef {
    pub owner: String,
    pub name: String,
    pub ty_head: Option<String>,
}

#[derive(Debug)]
pub struct FileAst {
    pub fns: Vec<FnItem>,
    pub fields: Vec<FieldDef>,
    /// `brace_match[i] = j` for every `{` at token index `i` whose
    /// matching `}` is at `j`, and vice versa.
    pub brace_match: Vec<usize>,
}

const KEYWORDS_BEFORE_PAREN: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "move", "else",
];

pub fn is_keyword_call(name: &str) -> bool {
    KEYWORDS_BEFORE_PAREN.contains(&name)
}

/// Strip reference/wrapper noise off a type token slice and return the
/// head identifier: `&'a mut Arc<Box<Option<Foo>>>` → `Foo`;
/// `Vec<Mutex<T>>` → `Vec` (containers are kept — element typing is the
/// lock-decl back-scan's job, not the field table's).
pub fn type_head(ty: &[String]) -> Option<String> {
    let mut i = 0;
    loop {
        let t = ty.get(i)?;
        match t.as_str() {
            "&" | "mut" | "dyn" => i += 1,
            s if s.starts_with('\'') => i += 1,
            "Arc" | "Box" | "Rc" | "Option" if ty.get(i + 1).is_some_and(|n| n == "<") => i += 2,
            _ => break,
        }
    }
    let t = ty.get(i)?;
    (!t.is_empty() && t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_'))
        .then(|| t.clone())
}

fn compute_brace_match(toks: &[Tok]) -> Vec<usize> {
    let mut out = vec![usize::MAX; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out[open] = i;
                    out[i] = open;
                }
            }
            _ => {}
        }
    }
    out
}

/// Skip a balanced `< … >` generic group starting at `i` (which must be
/// `<`); returns the index just past the matching `>`. Tolerant of `>>`
/// (two tokens) and gives up at `{`/`;` so a stray comparison cannot
/// swallow a body.
fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            "{" | ";" => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skip a balanced `( … )` group starting at `i` (which must be `(`);
/// returns the index just past the matching `)`.
fn skip_parens(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse the head of an `impl` item starting right after the `impl`
/// token; returns (self-type head, index of the body `{`), or `None`
/// when no body is found.
fn parse_impl_head(toks: &[Tok], mut i: usize) -> Option<(String, usize)> {
    if toks.get(i).is_some_and(|t| t.is("<")) {
        i = skip_generics(toks, i);
    }
    let mut last_path_ident: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => return last_path_ident.map(|ty| (ty, i)),
            ";" => return None,
            "for" => {
                // `impl Trait for Type`: restart — the Self type follows.
                last_path_ident = None;
                i += 1;
            }
            "<" => i = skip_generics(toks, i),
            "(" => i = skip_parens(toks, i),
            "where" => {
                // Scan forward to the body; the path is already complete.
                while i < toks.len() && !toks[i].is("{") {
                    if toks[i].is("<") {
                        i = skip_generics(toks, i);
                    } else {
                        i += 1;
                    }
                }
            }
            _ => {
                if t.kind == TokKind::Ident {
                    last_path_ident = Some(t.text.clone());
                }
                i += 1;
            }
        }
    }
    None
}

/// Parse `struct Name { fields }` starting right after the `struct`
/// token. Tuple structs and unit structs yield no fields.
fn parse_struct(toks: &[Tok], brace_match: &[usize], i: usize, out: &mut Vec<FieldDef>) {
    let Some(name_tok) = toks.get(i) else { return };
    if name_tok.kind != TokKind::Ident {
        return;
    }
    let owner = name_tok.text.clone();
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is("<")) {
        j = skip_generics(toks, j);
    }
    // `where` clauses may precede the brace.
    while j < toks.len() && !toks[j].is("{") {
        if toks[j].is(";") || toks[j].is("(") {
            return; // unit or tuple struct
        }
        j += 1;
    }
    if j >= toks.len() {
        return;
    }
    let close = brace_match[j];
    if close == usize::MAX {
        return;
    }
    // Fields: at depth 1 inside the braces, `name : type-tokens` up to a
    // `,` at depth 1 (angle-bracket commas are skipped via generics).
    let mut k = j + 1;
    while k < close {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.is(":"))
            && !t.is_ident("pub")
        {
            let name = t.text.clone();
            let mut ty = Vec::new();
            let mut m = k + 2;
            while m < close {
                match toks[m].text.as_str() {
                    "," => break,
                    "<" => {
                        let end = skip_generics(toks, m);
                        for tt in &toks[m..end.min(close)] {
                            ty.push(tt.text.clone());
                        }
                        m = end;
                    }
                    "(" => {
                        let end = skip_parens(toks, m);
                        for tt in &toks[m..end.min(close)] {
                            ty.push(tt.text.clone());
                        }
                        m = end;
                    }
                    _ => {
                        ty.push(toks[m].text.clone());
                        m += 1;
                    }
                }
            }
            out.push(FieldDef {
                owner: owner.clone(),
                name,
                ty_head: type_head(&ty),
            });
            k = m + 1;
            continue;
        }
        // `pub` / attributes / commas between fields.
        k += 1;
    }
}

/// Parse every `fn` item, `impl` block, and `struct` in the token
/// stream.
pub fn parse(toks: &[Tok]) -> FileAst {
    let brace_match = compute_brace_match(toks);
    let mut fns = Vec::new();
    let mut fields = Vec::new();
    // (self_ty, body_close_index) for the innermost impl at a position.
    let mut impl_stack: Vec<(String, usize)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        while let Some(&(_, close)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if let Some((ty, open)) = parse_impl_head(toks, i + 1) {
                    let close = brace_match[open];
                    if close != usize::MAX {
                        impl_stack.push((ty, close));
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "struct" => {
                parse_struct(toks, &brace_match, i + 1, &mut fields);
                i += 1;
            }
            "fn" => {
                // Item fn iff followed by a name (a fn-pointer type has
                // `fn (`).
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let name = name_tok.text.clone();
                let line = name_tok.line;
                let mut j = i + 2;
                if toks.get(j).is_some_and(|t| t.is("<")) {
                    j = skip_generics(toks, j);
                }
                if !toks.get(j).is_some_and(|t| t.is("(")) {
                    i += 1;
                    continue;
                }
                j = skip_parens(toks, j);
                // Collect the return type and find the body/`;`.
                let mut ret = Vec::new();
                let mut in_ret = false;
                let mut body = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => {
                            let close = brace_match[j];
                            if close != usize::MAX {
                                body = Some((j, close));
                            }
                            break;
                        }
                        ";" => break,
                        "->" => {
                            in_ret = true;
                            j += 1;
                        }
                        "where" => {
                            in_ret = false;
                            j += 1;
                        }
                        "<" => {
                            let end = skip_generics(toks, j);
                            if in_ret {
                                for tt in &toks[j..end.min(toks.len())] {
                                    ret.push(tt.text.clone());
                                }
                            }
                            j = end;
                        }
                        _ => {
                            if in_ret {
                                ret.push(toks[j].text.clone());
                            }
                            j += 1;
                        }
                    }
                }
                fns.push(FnItem {
                    name,
                    self_ty: impl_stack.last().map(|(ty, _)| ty.clone()),
                    ret,
                    body,
                    line,
                });
                // Continue scanning *inside* the body too (nested fns).
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    FileAst {
        fns,
        fields,
        brace_match,
    }
}

/// Index of the innermost fn whose body contains token position `pos`.
pub fn enclosing_fn(ast: &FileAst, pos: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_span = usize::MAX;
    for (idx, f) in ast.fns.iter().enumerate() {
        if let Some((open, close)) = f.body {
            if pos > open && pos < close && close - open < best_span {
                best = Some(idx);
                best_span = close - open;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::preprocess;
    use crate::tokens::tokenize;

    fn ast_of(text: &str) -> (Vec<Tok>, FileAst) {
        let f = preprocess("crates/x/src/a.rs", text);
        let toks = tokenize(&f);
        let ast = parse(&toks);
        (toks, ast)
    }

    #[test]
    fn fns_get_impl_self_types() {
        let (_, ast) = ast_of(
            "impl<'a> Partition {\n  pub fn allocate(&self) -> Result<PhysAddr> {\n    self.x()\n  }\n}\nfn free_fn() {}\nimpl fmt::Debug for Wal { fn fmt(&self) {} }\n",
        );
        let names: Vec<(String, Option<String>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("allocate".into(), Some("Partition".into())),
                ("free_fn".into(), None),
                ("fmt".into(), Some("Wal".into())),
            ]
        );
        assert_eq!(ast.fns[0].ret, vec!["Result", "<", "PhysAddr", ">"]);
    }

    #[test]
    fn struct_fields_unwrap_wrappers() {
        let (_, ast) = ast_of(
            "pub struct Database {\n  pub fault: Arc<FaultInjector>,\n  partitions: RwLock<Vec<Arc<Partition>>>,\n  n: u32,\n}\n",
        );
        let f: Vec<(String, Option<String>)> = ast
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.ty_head.clone()))
            .collect();
        assert_eq!(
            f,
            vec![
                ("fault".into(), Some("FaultInjector".into())),
                ("partitions".into(), Some("RwLock".into())),
                ("n".into(), Some("u32".into())),
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let (_, ast) = ast_of("struct H { hook: fn(u32) -> u32 }\nfn real() {}\n");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "real");
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let (toks, ast) = ast_of("fn outer() {\n  fn inner() {\n    leaf();\n  }\n}\n");
        let leaf_pos = toks.iter().position(|t| t.is_ident("leaf")).unwrap();
        let idx = enclosing_fn(&ast, leaf_pos).unwrap();
        assert_eq!(ast.fns[idx].name, "inner");
    }
}
