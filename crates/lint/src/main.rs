//! CI driver: run every pass over the workspace, report through the
//! baseline, and enforce the wall-clock budget.
//!
//! Environment:
//! - `LINT_BUDGET_MS` — fail if the analysis takes longer than this
//!   (ci.sh sets 5000; the budget is measured inside the binary so
//!   compile time does not count).
//! - `LINT_DEBUG=1` — dump the static lock graph and resolution
//!   diagnostics (unresolved receivers) to stderr.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let start = Instant::now();
    let root: PathBuf = lint::source::repo_root();

    let result = match lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = start.elapsed().as_millis();

    if std::env::var("LINT_DEBUG").is_ok() {
        for line in &result.debug {
            eprintln!("lint[debug]: {line}");
        }
    }

    let mut failed = false;
    for v in &result.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        failed = true;
    }
    for entry in &result.unused {
        println!(
            "lint-baseline.toml:{}: unused [[allow]] entry (rule `{}`, file `{}`): remove it",
            entry.toml_line, entry.rule, entry.file
        );
        failed = true;
    }

    if let Ok(budget) = std::env::var("LINT_BUDGET_MS") {
        if let Ok(budget_ms) = budget.parse::<u128>() {
            if elapsed_ms > budget_ms {
                println!("lint: budget exceeded: {elapsed_ms}ms > {budget_ms}ms");
                failed = true;
            }
        }
    }

    if failed {
        println!(
            "lint: FAILED ({} findings, {} unused baseline entries)",
            result.violations.len(),
            result.unused.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lint: OK ({} files, {} static lock edges, {elapsed_ms}ms)",
            result.files,
            result.graph.edges.len()
        );
        ExitCode::SUCCESS
    }
}
