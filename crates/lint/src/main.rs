//! Static lint pass over the substrate (DESIGN.md §11).
//!
//! `cargo run -p lint` walks the workspace's own `.rs` sources — skipping
//! `shims/`, `target/`, and this crate (whose sources carry the rule
//! patterns as data) — classifies every line (test region, doc comment,
//! code with comments stripped), and enforces six repo rules:
//!
//! | Rule id | What it forbids |
//! |---|---|
//! | `sleep` | `thread::sleep` outside `RetryPolicy` and test code |
//! | `unwrap` | `.unwrap()` / `.expect(` in `crates/brahma` + `crates/ira` non-test code |
//! | `obs-doc` | drift between obs counter keys set in code and the DESIGN.md §8 table |
//! | `fault-site` | fault-site string literals missing from the `site` catalogs, and catalog consts missing from their `ALL` list |
//! | `deprecated-reorg` | any definition or call of the removed free reorg entry points |
//! | `raw-parking-lot` | direct `parking_lot` primitives in `brahma`/`ira` outside `lockdep.rs` |
//!
//! Pre-existing debt is frozen in `lint-baseline.toml` at the repo root:
//! a violation matching a baseline entry (same rule, same file, line
//! containing the entry's `pattern`) is waived; anything else fails the
//! run with a `file:line` diagnostic. Burning down an entry means fixing
//! the code and deleting the entry — unused entries are reported so the
//! baseline can only shrink.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Line-oriented source model
// ---------------------------------------------------------------------------

/// One source line, pre-classified for the rules.
#[derive(Debug)]
struct Line {
    /// The raw text, for diagnostics and baseline pattern matching.
    raw: String,
    /// The raw text with comments removed (string literal contents are
    /// kept — several rules match keys inside them).
    code: String,
    /// Inside a `#[cfg(test)]` item, or in a file under a `tests/` dir.
    test: bool,
    /// A `///` or `//!` doc-comment line (doc examples are not real code).
    doc: bool,
}

#[derive(Debug)]
struct SourceFile {
    /// Path relative to the repo root, `/`-separated.
    rel: String,
    lines: Vec<Line>,
}

impl SourceFile {
    /// Lines a code rule should look at: 1-based number + line, excluding
    /// test regions and doc comments.
    fn code_lines(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.test && !l.doc)
            .map(|(i, l)| (i + 1, l))
    }
}

/// Lexer state carried across lines (strings and block comments span
/// lines; a trailing `\` keeps a normal string open).
#[derive(Debug, Clone, Copy, PartialEq)]
enum LexState {
    Code,
    Str,
    /// Raw string with this many `#`s in its delimiter.
    RawStr(usize),
    BlockComment,
}

/// Scan one line: append everything that is not a comment to `code`,
/// count braces that appear outside strings and comments into `depth`,
/// and return the state to carry into the next line.
fn scan_line(line: &str, state: LexState, code: &mut String, depth: &mut i64) -> LexState {
    let b = line.as_bytes();
    let mut st = state;
    let mut i = 0;
    while i < b.len() {
        match st {
            LexState::BlockComment => {
                if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = LexState::Code;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if b[i] == b'\\' {
                    if let Some(&c) = b.get(i + 1) {
                        code.push(c as char);
                    }
                    code.push('\\');
                    i += 2;
                } else {
                    if b[i] == b'"' {
                        st = LexState::Code;
                    }
                    code.push(b[i] as char);
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if b[i] == b'"' && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
                {
                    for &c in &b[i..=i + hashes] {
                        code.push(c as char);
                    }
                    st = LexState::Code;
                    i += 1 + hashes;
                } else {
                    code.push(b[i] as char);
                    i += 1;
                }
            }
            LexState::Code => {
                let c = b[i];
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    break; // line comment: drop the rest of the line
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = LexState::BlockComment;
                    i += 2;
                    continue;
                }
                if c == b'r' || c == b'b' {
                    // Possible raw-string opener r"…", r#"…"#, br"…".
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let hashes = b[j..].iter().take_while(|&&x| x == b'#').count();
                    if b.get(j + hashes) == Some(&b'"') {
                        for &x in &b[i..=j + hashes] {
                            code.push(x as char);
                        }
                        st = LexState::RawStr(hashes);
                        i = j + hashes + 1;
                        continue;
                    }
                }
                if c == b'"' {
                    st = LexState::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                if c == b'\'' {
                    // Char literal ('x', '\n', '\'') vs lifetime ('a in
                    // <'a>). A literal closes within a few bytes; copy it
                    // whole so a '{' char cannot skew the brace depth.
                    if b.get(i + 1) == Some(&b'\\') {
                        let end = b[i + 2..].iter().position(|&x| x == b'\'');
                        if let Some(off) = end {
                            for &x in &b[i..=i + 2 + off] {
                                code.push(x as char);
                            }
                            i += 3 + off;
                            continue;
                        }
                    } else if b.get(i + 2) == Some(&b'\'') {
                        for &x in &b[i..i + 3] {
                            code.push(x as char);
                        }
                        i += 3;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                if c == b'{' {
                    *depth += 1;
                } else if c == b'}' {
                    *depth -= 1;
                }
                code.push(c as char);
                i += 1;
            }
        }
    }
    st
}

/// Classify a whole file: strip comments, track `#[cfg(test)]` brace
/// regions, flag doc-comment lines.
fn preprocess(rel: &str, text: &str) -> SourceFile {
    let whole_file_test = rel.starts_with("tests/") || rel.contains("/tests/");
    let mut lines = Vec::new();
    let mut st = LexState::Code;
    let mut depth: i64 = 0;
    // Brace depths at which a `#[cfg(test)]` item opened a region.
    let mut test_regions: Vec<i64> = Vec::new();
    let mut pending_cfg_test = false;

    for raw in text.lines() {
        let depth_before = depth;
        let st_before = st;
        let mut code = String::new();
        st = scan_line(raw, st, &mut code, &mut depth);

        let trimmed_raw = raw.trim_start();
        let doc = st_before == LexState::Code
            && (trimmed_raw.starts_with("///") || trimmed_raw.starts_with("//!"));

        let trimmed = code.trim();
        if !trimmed.is_empty() {
            if trimmed.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && !trimmed.starts_with("#[") {
                if depth > depth_before {
                    // The gated item opens a brace region (mod/fn/impl).
                    test_regions.push(depth_before);
                    pending_cfg_test = false;
                } else if trimmed.ends_with(';') {
                    // Braceless gated item (`use …;`): just this line.
                    pending_cfg_test = false;
                }
            }
        }
        let test = whole_file_test || !test_regions.is_empty() || pending_cfg_test;
        while let Some(&d) = test_regions.last() {
            if depth <= d && depth < depth_before {
                test_regions.pop();
            } else {
                break;
            }
        }

        lines.push(Line {
            raw: raw.to_string(),
            code,
            test,
            doc,
        });
    }
    SourceFile {
        rel: rel.to_string(),
        lines,
    }
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

fn repo_root() -> PathBuf {
    // crates/lint/ → repo root is two levels up from this manifest.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn collect_paths(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == "shims" || path.ends_with("crates/lint") {
                continue;
            }
            collect_paths(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn load_sources(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_paths(&root.join(top), &mut paths);
    }
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(p).unwrap_or_default();
            preprocess(&rel, &text)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Violations and the baseline
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Violation {
    rule: &'static str,
    file: String,
    line: usize,
    message: String,
    /// The offending line text, matched against baseline `pattern`s.
    excerpt: String,
}

fn violation(
    rule: &'static str,
    file: &str,
    line: usize,
    message: String,
    excerpt: &str,
) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        message,
        excerpt: excerpt.trim().to_string(),
    }
}

/// One `[[allow]]` entry of `lint-baseline.toml`.
#[derive(Debug, Default, Clone)]
struct AllowEntry {
    rule: String,
    file: String,
    /// Substring of the offending line; empty waives the whole file for
    /// this rule.
    pattern: String,
    reason: String,
    toml_line: usize,
}

struct Baseline {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Baseline {
    fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let line_no = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    entries.push(Self::finish(entry)?);
                }
                current = Some(AllowEntry {
                    toml_line: line_no,
                    ..AllowEntry::default()
                });
                continue;
            }
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "lint-baseline.toml:{line_no}: key outside an [[allow]] section"
                ));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint-baseline.toml:{line_no}: expected `key = \"value\"`"));
            };
            let value = value.trim();
            let Some(value) = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
            else {
                return Err(format!(
                    "lint-baseline.toml:{line_no}: value must be double-quoted"
                ));
            };
            let value = value.replace("\\\"", "\"");
            match key.trim() {
                "rule" => entry.rule = value,
                "file" => entry.file = value,
                "pattern" => entry.pattern = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(format!(
                        "lint-baseline.toml:{line_no}: unknown key `{other}`"
                    ));
                }
            }
        }
        if let Some(entry) = current.take() {
            entries.push(Self::finish(entry)?);
        }
        let used = vec![false; entries.len()];
        Ok(Baseline { entries, used })
    }

    fn finish(entry: AllowEntry) -> Result<AllowEntry, String> {
        if entry.rule.is_empty() || entry.file.is_empty() || entry.reason.is_empty() {
            return Err(format!(
                "lint-baseline.toml:{}: [[allow]] needs non-empty `rule`, `file`, and `reason`",
                entry.toml_line
            ));
        }
        Ok(entry)
    }

    /// Waive `v` if a matching entry exists; marks the entry used.
    fn waives(&mut self, v: &Violation) -> bool {
        for (entry, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if entry.rule == v.rule
                && entry.file == v.file
                && (entry.pattern.is_empty() || v.excerpt.contains(&entry.pattern))
            {
                *used = true;
                return true;
            }
        }
        false
    }

    fn unused(&self) -> impl Iterator<Item = &AllowEntry> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter(|(_, &used)| !used)
            .map(|(e, _)| e)
    }
}

// ---------------------------------------------------------------------------
// Rule: sleep
// ---------------------------------------------------------------------------

/// `thread::sleep` in non-test code parks a thread the scheduler knows
/// nothing about; only `RetryPolicy`'s backoff may sleep.
fn rule_sleep(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if f.rel == "crates/brahma/src/retry.rs" {
            continue;
        }
        for (no, line) in f.code_lines() {
            if line.code.contains("thread::sleep") {
                out.push(violation(
                    "sleep",
                    &f.rel,
                    no,
                    "thread::sleep outside RetryPolicy/test code (use RetryPolicy backoff or a Condvar wait)"
                        .to_string(),
                    &line.raw,
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: unwrap
// ---------------------------------------------------------------------------

/// Substrate code must surface failures as `Error` values, not panics.
fn rule_unwrap(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/brahma/src") || f.rel.starts_with("crates/ira/src")) {
            continue;
        }
        for (no, line) in f.code_lines() {
            for pat in [".unwrap()", ".expect("] {
                if line.code.contains(pat) {
                    out.push(violation(
                        "unwrap",
                        &f.rel,
                        no,
                        format!("`{pat}` in substrate non-test code (return an Error, or baseline with a documented invariant)"),
                        &line.raw,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: obs-doc
// ---------------------------------------------------------------------------

/// Pull every string literal that directly follows `pat` on the line.
fn literals_after<'a>(code: &'a str, pat: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(idx) = rest.find(pat) {
        let tail = &rest[idx + pat.len()..];
        if let Some(end) = tail.find('"') {
            out.push(&tail[..end]);
            rest = &tail[end..];
        } else {
            break;
        }
    }
    out
}

/// `format!("fault.fired.{site}")` templates → the §8 placeholder
/// spelling `fault.fired.<site>`.
fn normalize_template(key: &str) -> String {
    key.replace('{', "<").replace('}', ">")
}

/// Expand one §8 key cell: `` `lock.wait_us_sum` / `wait_us_max` `` means
/// both keys share the first key's `lock.` prefix.
fn expand_key_cell(cell: &str) -> Vec<String> {
    let keys: Vec<&str> = cell
        .split('`')
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, k)| k)
        .collect();
    let prefix = keys
        .first()
        .and_then(|k| k.find('.').map(|i| k[..=i].to_string()))
        .unwrap_or_default();
    keys.iter()
        .enumerate()
        .map(|(i, k)| {
            if i == 0 || k.contains('.') {
                (*k).to_string()
            } else {
                format!("{prefix}{k}")
            }
        })
        .collect()
}

/// Keys documented in the DESIGN.md §8 table, with their line numbers.
fn design_section8_keys(design: &str) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    let mut in_section8 = false;
    for (idx, raw) in design.lines().enumerate() {
        if raw.starts_with("## ") {
            in_section8 = raw.starts_with("## 8");
            continue;
        }
        if !in_section8 {
            continue;
        }
        let trimmed = raw.trim();
        if !trimmed.starts_with("| `") {
            continue;
        }
        let Some(cell) = trimmed.split('|').nth(1) else {
            continue;
        };
        for key in expand_key_cell(cell) {
            keys.entry(key).or_insert(idx + 1);
        }
    }
    keys
}

/// Counter keys set in non-test code, with one representative site each.
/// Works over the file's joined code text so a `.set(` whose key literal
/// sits on the next line (rustfmt wraps long calls) is still found.
fn code_obs_keys(files: &[SourceFile]) -> BTreeMap<String, (String, usize)> {
    let mut keys = BTreeMap::new();
    for f in files {
        let mut joined = String::new();
        for line in &f.lines {
            if !line.test && !line.doc {
                joined.push_str(&line.code);
            }
            joined.push('\n');
        }
        let mut pos = 0;
        while let Some(idx) = joined[pos..].find(".set(") {
            let after = pos + idx + ".set(".len();
            let mut key_src = joined[after..].trim_start();
            let mut template = false;
            if let Some(rest) = key_src.strip_prefix("&format!(") {
                key_src = rest.trim_start();
                template = true;
            }
            if let Some(rest) = key_src.strip_prefix('"') {
                if let Some(end) = rest.find('"') {
                    let key = if template {
                        normalize_template(&rest[..end])
                    } else {
                        rest[..end].to_string()
                    };
                    let line_no = joined[..after].matches('\n').count() + 1;
                    keys.entry(key).or_insert((f.rel.clone(), line_no));
                }
            }
            pos = after;
        }
    }
    keys
}

/// Every counter key set in code must appear in the §8 table, and every
/// documented key must still be set somewhere (no dead rows).
fn rule_obs_doc(files: &[SourceFile], design: &str) -> Vec<Violation> {
    let documented = design_section8_keys(design);
    let in_code = code_obs_keys(files);
    let mut out = Vec::new();
    for (key, (file, line)) in &in_code {
        if !documented.contains_key(key) {
            out.push(violation(
                "obs-doc",
                file,
                *line,
                format!("counter key `{key}` is set here but missing from the DESIGN.md \u{a7}8 table"),
                key,
            ));
        }
    }
    for (key, line) in &documented {
        if !in_code.contains_key(key) {
            out.push(violation(
                "obs-doc",
                "DESIGN.md",
                *line,
                format!("documented counter key `{key}` is never set in code (dead row)"),
                key,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: fault-site
// ---------------------------------------------------------------------------

/// The two files whose `pub mod site` blocks form the fault-site catalog.
const SITE_CATALOG_FILES: [&str; 2] = ["crates/brahma/src/fault.rs", "crates/ira/src/chaos.rs"];

#[derive(Debug)]
struct SiteConst {
    name: String,
    value: String,
    file: String,
    line: usize,
}

/// `pub const NAME: &str = "dotted.value";` declarations in a catalog file.
fn catalog_consts(f: &SourceFile) -> Vec<SiteConst> {
    let mut out = Vec::new();
    for (no, line) in f.code_lines() {
        let Some(idx) = line.code.find("pub const ") else {
            continue;
        };
        let tail = &line.code[idx + "pub const ".len()..];
        let Some((name, rest)) = tail.split_once(':') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("&str") else {
            continue;
        };
        let Some(value) = literals_after(rest, "\"").first().copied() else {
            continue;
        };
        out.push(SiteConst {
            name: name.trim().to_string(),
            value: value.to_string(),
            file: f.rel.clone(),
            line: no,
        });
    }
    out
}

/// The identifiers listed in a catalog file's sweep arrays: every
/// `…ALL: &[&str] = &[…];` declaration (e.g. `ALL` and `FILE_ALL`),
/// concatenated — the caller only tokenizes this text.
fn catalog_all_list(f: &SourceFile) -> String {
    let mut collecting = false;
    let mut text = String::new();
    for (_, line) in f.code_lines() {
        if !collecting {
            if let Some(idx) = line.code.find("ALL: &[&str]") {
                let tail = &line.code[idx..];
                text.push_str(tail);
                text.push(' ');
                collecting = !tail.contains("];");
            }
        } else {
            text.push_str(&line.code);
            text.push(' ');
            collecting = !line.code.contains("];");
        }
    }
    text
}

/// Fault-site literals must come from the catalog; every catalog const
/// must be swept (listed in its module's `ALL`).
fn rule_fault_site(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut registered: BTreeSet<String> = BTreeSet::new();
    for f in files {
        if !SITE_CATALOG_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        let consts = catalog_consts(f);
        let all = catalog_all_list(f);
        for c in &consts {
            registered.insert(c.value.clone());
            let listed = all
                .split(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                .any(|tok| tok == c.name);
            if !listed {
                out.push(violation(
                    "fault-site",
                    &c.file,
                    c.line,
                    format!(
                        "site const `{}` (\"{}\") is not listed in its module's `ALL` sweep array",
                        c.name, c.value
                    ),
                    &c.name,
                ));
            }
        }
    }
    for f in files {
        for (no, line) in f.code_lines() {
            for pat in [".observe(\"", "site: \""] {
                for lit in literals_after(&line.code, pat) {
                    if !registered.contains(lit) {
                        out.push(violation(
                            "fault-site",
                            &f.rel,
                            no,
                            format!(
                                "fault-site literal \"{lit}\" is not registered in a `site` catalog (use the catalog const)"
                            ),
                            &line.raw,
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: deprecated-reorg
// ---------------------------------------------------------------------------

/// The free reorg entry points removed when the `Reorg` builder became the
/// only public way in. The rule bans them outright — definitions and calls
/// alike — so they cannot grow back under the same names.
const BANNED_REORG_FNS: [&str; 5] = [
    "incremental_reorganize",
    "partition_quiesce_reorganize",
    "partition_quiesce_reorganize_with",
    "offline_reorganize",
    "resume_reorganization",
];

/// True when `code` defines `fn <name>`.
fn defines_fn(code: &str, name: &str) -> bool {
    code.find("fn ").is_some_and(|idx| {
        let tail = &code[idx + 3..];
        tail.starts_with(name)
            && !tail[name.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
    })
}

/// True when `code` calls `name(` as a standalone identifier.
fn calls_fn(code: &str, name: &str) -> bool {
    let mut rest = code;
    while let Some(idx) = rest.find(name) {
        let before_ok = rest[..idx]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        let after = &rest[idx + name.len()..];
        if before_ok && after.starts_with('(') {
            return true;
        }
        rest = &rest[idx + name.len()..];
    }
    false
}

/// The free reorg entry points were removed in favor of the `Reorg`
/// builder. Any definition or call under the old names — anywhere in the
/// workspace — is a violation; there is no exempt defining file anymore.
fn rule_deprecated(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        for (no, line) in f.code_lines() {
            for name in BANNED_REORG_FNS {
                if defines_fn(&line.code, name) {
                    out.push(violation(
                        "deprecated-reorg",
                        &f.rel,
                        no,
                        format!("reintroduces removed `{name}` (use the Reorg builder)"),
                        &line.raw,
                    ));
                } else if calls_fn(&line.code, name) {
                    out.push(violation(
                        "deprecated-reorg",
                        &f.rel,
                        no,
                        format!("call to removed `{name}` (use the Reorg builder)"),
                        &line.raw,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: raw-parking-lot
// ---------------------------------------------------------------------------

/// All substrate locking must flow through the `lockdep`-instrumented
/// wrappers, or lock-order checking silently loses coverage.
fn rule_parking_lot(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/brahma/src") || f.rel.starts_with("crates/ira/src")) {
            continue;
        }
        if f.rel == "crates/brahma/src/lockdep.rs" {
            continue; // the instrumentation layer itself
        }
        for (no, line) in f.code_lines() {
            if line.code.contains("parking_lot") {
                out.push(violation(
                    "raw-parking-lot",
                    &f.rel,
                    no,
                    "direct parking_lot primitive outside the lockdep wrappers (use brahma::lockdep::{Mutex, RwLock, Condvar})"
                        .to_string(),
                    &line.raw,
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

fn run_all_rules(files: &[SourceFile], design: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    violations.extend(rule_sleep(files));
    violations.extend(rule_unwrap(files));
    violations.extend(rule_obs_doc(files, design));
    violations.extend(rule_fault_site(files));
    violations.extend(rule_deprecated(files));
    violations.extend(rule_parking_lot(files));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    violations
}

fn main() -> ExitCode {
    let root = repo_root();
    let files = load_sources(&root);
    if files.is_empty() {
        eprintln!("lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let baseline_text = fs::read_to_string(root.join("lint-baseline.toml")).unwrap_or_default();
    let mut baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let violations = run_all_rules(&files, &design);
    let mut fresh = 0usize;
    let mut waived = 0usize;
    for v in &violations {
        if baseline.waives(v) {
            waived += 1;
        } else {
            println!("lint: {}: {}:{}: {}", v.rule, v.file, v.line, v.message);
            fresh += 1;
        }
    }
    for entry in baseline.unused() {
        eprintln!(
            "lint: warning: unused baseline entry (lint-baseline.toml:{}) rule={} file={} — debt paid down, delete it",
            entry.toml_line, entry.rule, entry.file
        );
    }
    println!(
        "lint: {} files, {} violations ({} baselined, {} new)",
        files.len(),
        violations.len(),
        waived,
        fresh
    );
    if fresh > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn src(rel: &str, text: &str) -> SourceFile {
        preprocess(rel, text)
    }

    #[test]
    fn scanner_strips_comments_and_keeps_strings() {
        let mut code = String::new();
        let mut depth = 0;
        let st = scan_line(
            "let x = \"a // not a comment {\"; // real comment {",
            LexState::Code,
            &mut code,
            &mut depth,
        );
        assert_eq!(st, LexState::Code);
        assert_eq!(code, "let x = \"a // not a comment {\"; ");
        assert_eq!(depth, 0, "braces inside strings must not count");
    }

    #[test]
    fn scanner_carries_strings_and_block_comments_across_lines() {
        let mut code = String::new();
        let mut depth = 0;
        let st = scan_line("let s = \"open \\", LexState::Code, &mut code, &mut depth);
        assert_eq!(st, LexState::Str);
        let st = scan_line("still inside\";", st, &mut code, &mut depth);
        assert_eq!(st, LexState::Code);

        let mut code = String::new();
        let st = scan_line("/* begin {", LexState::Code, &mut code, &mut depth);
        assert_eq!(st, LexState::BlockComment);
        let st = scan_line("end } */ let y = 1;", st, &mut code, &mut depth);
        assert_eq!(st, LexState::Code);
        assert_eq!(code.trim(), "let y = 1;");
        assert_eq!(depth, 0);
    }

    #[test]
    fn scanner_handles_raw_strings_and_char_literals() {
        let mut code = String::new();
        let mut depth = 0;
        let st = scan_line(
            "let r = r#\"{ // not code \"#; let c = '{';",
            LexState::Code,
            &mut code,
            &mut depth,
        );
        assert_eq!(st, LexState::Code);
        assert_eq!(depth, 0, "raw-string and char-literal braces must not count");
    }

    #[test]
    fn cfg_test_regions_are_excluded() {
        let f = src(
            "crates/brahma/src/x.rs",
            "fn hot() {\n    work();\n}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\nfn after() {}\n",
        );
        let flags: Vec<bool> = f.lines.iter().map(|l| l.test).collect();
        assert!(!flags[0] && !flags[1], "real code is not test");
        assert!(flags[5] && flags[6], "inside the cfg(test) mod is test");
        assert!(!flags[9], "code after the mod closes is not test");
    }

    #[test]
    fn files_under_tests_dirs_are_all_test() {
        let f = src("crates/ira/tests/sweep.rs", "fn x() { y.unwrap(); }\n");
        assert!(f.lines[0].test);
    }

    #[test]
    fn sleep_rule_fires_outside_retry_and_tests() {
        let hot = src(
            "crates/ira/src/pqr.rs",
            "fn f() {\n    std::thread::sleep(d);\n}\n",
        );
        let retry = src(
            "crates/brahma/src/retry.rs",
            "fn f() {\n    std::thread::sleep(d);\n}\n",
        );
        let test = src(
            "crates/ira/src/pqr.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::sleep(d); }\n}\n",
        );
        assert_eq!(rule_sleep(&[hot]).len(), 1);
        assert_eq!(rule_sleep(&[retry]).len(), 0);
        assert_eq!(rule_sleep(&[test]).len(), 0);
    }

    #[test]
    fn unwrap_rule_scopes_to_substrate_crates() {
        let brahma = src("crates/brahma/src/lock.rs", "fn f() { x.unwrap(); }\n");
        let ira = src("crates/ira/src/driver.rs", "fn f() { x.expect(\"m\"); }\n");
        let workload = src("crates/workload/src/driver.rs", "fn f() { x.unwrap(); }\n");
        let doc = src(
            "crates/brahma/src/lib.rs",
            "/// let v = x.unwrap();\nfn f() {}\n",
        );
        assert_eq!(rule_unwrap(&[brahma]).len(), 1);
        assert_eq!(rule_unwrap(&[ira]).len(), 1);
        assert_eq!(rule_unwrap(&[workload]).len(), 0);
        assert_eq!(rule_unwrap(&[doc]).len(), 0);
    }

    const DESIGN_FIXTURE: &str = "\
## 8. Observability

| Key | Incremented at |
|---|---|
| `lock.waits` / `wait_us_sum` | the lock manager |
| `fault.fired.<site>` | the injector |
| `dead.key` | nowhere |

## 9. Next section
| `not.parsed` | outside section 8 |
";

    #[test]
    fn design_key_expansion_handles_prefix_shorthand() {
        let keys = design_section8_keys(DESIGN_FIXTURE);
        assert!(keys.contains_key("lock.waits"));
        assert!(keys.contains_key("lock.wait_us_sum"), "prefix carried over");
        assert!(keys.contains_key("fault.fired.<site>"));
        assert!(!keys.contains_key("not.parsed"), "only §8 rows count");
    }

    #[test]
    fn obs_doc_rule_catches_drift_both_ways() {
        let code = src(
            "crates/brahma/src/lock.rs",
            "fn export(s: &mut Snapshot) {\n    s.set(\"lock.waits\", 1);\n    s.set(\n        \"lock.wait_us_sum\",\n        2,\n    );\n    s.set(\"lock.rogue\", 3);\n    s.set(&format!(\"fault.fired.{site}\"), 4);\n}\n",
        );
        let vs = rule_obs_doc(&[code], DESIGN_FIXTURE);
        let msgs: Vec<&str> = vs.iter().map(|v| v.message.as_str()).collect();
        assert_eq!(vs.len(), 2, "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("lock.rogue")),
            "undocumented key flagged"
        );
        assert!(
            msgs.iter().any(|m| m.contains("dead.key")),
            "dead doc row flagged; wrapped .set( calls must still count"
        );
    }

    const CATALOG_FIXTURE: &str = "\
pub mod site {
    pub const A: &str = \"x.a\";
    pub const B: &str = \"x.b\";
    pub const ALL: &[&str] = &[A];
}
";

    #[test]
    fn fault_site_rule_checks_all_list_and_literals() {
        let catalog = src("crates/brahma/src/fault.rs", CATALOG_FIXTURE);
        let user = src(
            "crates/ira/src/driver.rs",
            "fn f(db: &Db) {\n    db.fault.observe(\"x.a\");\n    db.fault.observe(\"x.rogue\");\n}\n",
        );
        let vs = rule_fault_site(&[catalog, user]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("`B`")), "B not in ALL");
        assert!(vs.iter().any(|v| v.message.contains("x.rogue")));
    }

    #[test]
    fn deprecated_rule_bans_definitions_and_calls() {
        let def = src(
            "crates/ira/src/pqr.rs",
            "pub fn incremental_reorganize(db: &Db) {\n}\n",
        );
        let caller = src(
            "crates/ira/src/driver.rs",
            "fn f(db: &Db) {\n    offline_reorganize(db);\n}\n",
        );
        let clean = src(
            "crates/ira/src/builder.rs",
            "fn g(db: &Db) {\n    Reorg::on(db, p).run();\n    my_offline_reorganizer(db);\n}\n",
        );
        let vs = rule_deprecated(&[def, caller, clean]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.file == "crates/ira/src/pqr.rs"
            && v.message.contains("reintroduces")));
        assert!(vs.iter().any(|v| v.file == "crates/ira/src/driver.rs"
            && v.message.contains("call to removed")));
    }

    #[test]
    fn parking_lot_rule_exempts_lockdep_only() {
        let lockdep = src(
            "crates/brahma/src/lockdep.rs",
            "use parking_lot::Mutex;\n",
        );
        let raw = src("crates/brahma/src/lock.rs", "use parking_lot::Mutex;\n");
        assert_eq!(rule_parking_lot(&[lockdep]).len(), 0);
        assert_eq!(rule_parking_lot(&[raw]).len(), 1);
    }

    #[test]
    fn baseline_waives_matching_violations_and_tracks_unused() {
        let toml = "\
# frozen debt
[[allow]]
rule = \"sleep\"
file = \"crates/ira/src/pqr.rs\"
pattern = \"thread::sleep\"
reason = \"poll loop, pre-lint\"

[[allow]]
rule = \"unwrap\"
file = \"crates/brahma/src/gone.rs\"
reason = \"already fixed\"
";
        let mut baseline = Baseline::parse(toml).expect("parses");
        let hit = violation(
            "sleep",
            "crates/ira/src/pqr.rs",
            9,
            "m".into(),
            "std::thread::sleep(d);",
        );
        let miss = violation(
            "sleep",
            "crates/ira/src/driver.rs",
            2,
            "m".into(),
            "std::thread::sleep(d);",
        );
        assert!(baseline.waives(&hit));
        assert!(!baseline.waives(&miss));
        let unused: Vec<_> = baseline.unused().collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].file, "crates/brahma/src/gone.rs");
    }

    #[test]
    fn baseline_rejects_malformed_entries() {
        assert!(Baseline::parse("rule = \"sleep\"\n").is_err(), "key outside section");
        assert!(
            Baseline::parse("[[allow]]\nrule = \"sleep\"\n").is_err(),
            "missing file/reason"
        );
        assert!(
            Baseline::parse("[[allow]]\nrule = unquoted\n").is_err(),
            "unquoted value"
        );
    }

    /// The acceptance criterion in one test: a seeded violation in an
    /// otherwise-clean tree fails the run.
    #[test]
    fn seeded_violation_fails_a_clean_tree() {
        let clean = src("crates/brahma/src/ok.rs", "fn f() -> R { g() }\n");
        let seeded = src(
            "crates/brahma/src/bad.rs",
            "fn f() {\n    x.lock().unwrap();\n}\n",
        );
        assert!(run_all_rules(&[clean], "").is_empty());
        let vs = run_all_rules(&[seeded], "");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "unwrap");
        assert_eq!(vs[0].line, 2);
    }
}
