//! Token stream over a [`SourceFile`]'s comment-stripped, non-test,
//! non-doc code, with 1-based line numbers preserved for diagnostics.
//!
//! `#[cfg(test)]` regions are dropped before tokenizing: they are whole
//! items, so brace balance survives their removal and the lock-graph
//! passes never see deliberate test violations (lockdep's own ABBA
//! tests would otherwise "report" themselves).

use crate::source::SourceFile;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// Integer/float literal (single token, value unused).
    Num,
    /// String or char literal (single token; contents kept for debugging).
    Lit,
    /// `'a` — distinct from `Lit` so lifetimes never look like chars.
    Lifetime,
    /// Single punctuation char, or one of the fused ops `::`, `->`, `=>`.
    Punct,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Tokenize the non-test, non-doc code lines of `f`.
pub fn tokenize(f: &SourceFile) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in f.lines.iter().enumerate() {
        if line.test || line.doc {
            continue;
        }
        tokenize_line(&line.code, idx + 1, &mut out);
    }
    out
}

fn tokenize_line(code: &str, line: usize, out: &mut Vec<Tok>) {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: code[start..i].to_string(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.') {
                // `0..10` must not swallow the range: stop a trailing `.`
                // when the char after it is another `.`.
                if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                    break;
                }
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Num,
                text: code[start..i].to_string(),
                line,
            });
            continue;
        }
        if c == b'"' {
            // The scanner kept literal contents; consume to the closing
            // quote (escapes were preserved with their backslash).
            let start = i;
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Lit,
                text: code[start..i.min(code.len())].to_string(),
                line,
            });
            continue;
        }
        if c == b'\'' {
            // Closed char literal ('x', '\n') or a lifetime ('a).
            let is_char = b.get(i + 1) == Some(&b'\\') && b[i + 2..].contains(&b'\'')
                || b.get(i + 2) == Some(&b'\'');
            if is_char {
                let close = b[i + 1..]
                    .iter()
                    .position(|&x| x == b'\'')
                    .map(|p| i + 1 + p)
                    .unwrap_or(i + 1);
                out.push(Tok {
                    kind: TokKind::Lit,
                    text: code[i..=close.min(code.len() - 1)].to_string(),
                    line,
                });
                i = close + 1;
            } else {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: code[start..i].to_string(),
                    line,
                });
            }
            continue;
        }
        // Fused multi-char operators the parser matches on.
        if let Some(op) = ["::", "->", "=>"].iter().find(|op| code[i..].starts_with(**op)) {
            out.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
            });
            i += op.len();
            continue;
        }
        out.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::preprocess;

    fn toks(text: &str) -> Vec<String> {
        let f = preprocess("crates/x/src/a.rs", text);
        tokenize(&f).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn fused_ops_and_idents() {
        assert_eq!(
            toks("fn f() -> &Mutex<T> { self.a::<u8>() }"),
            vec![
                "fn", "f", "(", ")", "->", "&", "Mutex", "<", "T", ">", "{", "self", ".", "a",
                "::", "<", "u8", ">", "(", ")", "}"
            ]
        );
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        assert_eq!(toks("0..workers"), vec!["0", ".", ".", "workers"]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        assert_eq!(toks("<'a> 'x'"), vec!["<", "'a", ">", "'x'"]);
    }

    #[test]
    fn test_regions_are_dropped() {
        let t = toks("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}");
        assert!(t.contains(&"a".to_string()));
        assert!(!t.contains(&"b".to_string()));
        assert!(t.contains(&"c".to_string()));
    }

    #[test]
    fn line_numbers_track_source_lines() {
        let f = preprocess("crates/x/src/a.rs", "fn a()\n{\n    b();\n}\n");
        let toks = tokenize(&f);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
