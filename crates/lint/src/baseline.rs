//! `lint-baseline.toml`: frozen pre-existing debt. A violation matching
//! an entry (same rule, same file, line containing the entry's `pattern`)
//! is waived; unused entries are reported so the baseline only shrinks.

use crate::report::Violation;

/// One `[[allow]]` entry of `lint-baseline.toml`.
#[derive(Debug, Default, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    /// Substring of the offending line; empty waives the whole file for
    /// this rule.
    pub pattern: String,
    pub reason: String,
    pub toml_line: usize,
}

pub struct Baseline {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let line_no = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    entries.push(Self::finish(entry)?);
                }
                current = Some(AllowEntry {
                    toml_line: line_no,
                    ..AllowEntry::default()
                });
                continue;
            }
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "lint-baseline.toml:{line_no}: key outside an [[allow]] section"
                ));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint-baseline.toml:{line_no}: expected `key = \"value\"`"));
            };
            let value = value.trim();
            let Some(value) = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
            else {
                return Err(format!(
                    "lint-baseline.toml:{line_no}: value must be double-quoted"
                ));
            };
            let value = value.replace("\\\"", "\"");
            match key.trim() {
                "rule" => entry.rule = value,
                "file" => entry.file = value,
                "pattern" => entry.pattern = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(format!(
                        "lint-baseline.toml:{line_no}: unknown key `{other}`"
                    ));
                }
            }
        }
        if let Some(entry) = current.take() {
            entries.push(Self::finish(entry)?);
        }
        let used = vec![false; entries.len()];
        Ok(Baseline { entries, used })
    }

    fn finish(entry: AllowEntry) -> Result<AllowEntry, String> {
        if entry.rule.is_empty() || entry.file.is_empty() || entry.reason.is_empty() {
            return Err(format!(
                "lint-baseline.toml:{}: [[allow]] needs non-empty `rule`, `file`, and `reason`",
                entry.toml_line
            ));
        }
        Ok(entry)
    }

    /// Waive `v` if a matching entry exists; marks the entry used.
    pub fn waives(&mut self, v: &Violation) -> bool {
        for (entry, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if entry.rule == v.rule
                && entry.file == v.file
                && (entry.pattern.is_empty() || v.excerpt.contains(&entry.pattern))
            {
                *used = true;
                return true;
            }
        }
        false
    }

    pub fn unused(&self) -> impl Iterator<Item = &AllowEntry> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter(|(_, &used)| !used)
            .map(|(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::violation;

    #[test]
    fn baseline_waives_matching_violations_and_tracks_unused() {
        let toml = "\
# frozen debt
[[allow]]
rule = \"sleep\"
file = \"crates/ira/src/pqr.rs\"
pattern = \"thread::sleep\"
reason = \"poll loop, pre-lint\"

[[allow]]
rule = \"unwrap\"
file = \"crates/brahma/src/gone.rs\"
reason = \"already fixed\"
";
        let mut baseline = Baseline::parse(toml).expect("parses");
        let hit = violation(
            "sleep",
            "crates/ira/src/pqr.rs",
            9,
            "m".into(),
            "std::thread::sleep(d);",
        );
        let miss = violation(
            "sleep",
            "crates/ira/src/driver.rs",
            2,
            "m".into(),
            "std::thread::sleep(d);",
        );
        assert!(baseline.waives(&hit));
        assert!(!baseline.waives(&miss));
        let unused: Vec<_> = baseline.unused().collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].file, "crates/brahma/src/gone.rs");
    }

    #[test]
    fn baseline_rejects_malformed_entries() {
        assert!(Baseline::parse("rule = \"sleep\"\n").is_err(), "key outside section");
        assert!(
            Baseline::parse("[[allow]]\nrule = \"sleep\"\n").is_err(),
            "missing file/reason"
        );
        assert!(
            Baseline::parse("[[allow]]\nrule = unquoted\n").is_err(),
            "unquoted value"
        );
    }
}
