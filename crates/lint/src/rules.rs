//! The six line-oriented repo rules (DESIGN.md §11/§17): `sleep`,
//! `unwrap`, `obs-doc`, `fault-site`, `deprecated-reorg`,
//! `raw-parking-lot`. The lock-graph, guard-blocking, and
//! atomic-ordering passes live in [`crate::lockgraph`] and
//! [`crate::ordering`].

use std::collections::{BTreeMap, BTreeSet};

use crate::report::{violation, Violation};
use crate::source::SourceFile;

// ---------------------------------------------------------------------------
// Rule: sleep
// ---------------------------------------------------------------------------

/// `thread::sleep` in non-test code parks a thread the scheduler knows
/// nothing about; only `RetryPolicy`'s backoff may sleep.
pub fn rule_sleep(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if f.rel == "crates/brahma/src/retry.rs" {
            continue;
        }
        for (no, line) in f.code_lines() {
            if line.code.contains("thread::sleep") {
                out.push(violation(
                    "sleep",
                    &f.rel,
                    no,
                    "thread::sleep outside RetryPolicy/test code (use RetryPolicy backoff or a Condvar wait)"
                        .to_string(),
                    &line.raw,
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: unwrap
// ---------------------------------------------------------------------------

/// Substrate code must surface failures as `Error` values, not panics.
pub fn rule_unwrap(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/brahma/src") || f.rel.starts_with("crates/ira/src")) {
            continue;
        }
        for (no, line) in f.code_lines() {
            for pat in [".unwrap()", ".expect("] {
                if line.code.contains(pat) {
                    out.push(violation(
                        "unwrap",
                        &f.rel,
                        no,
                        format!("`{pat}` in substrate non-test code (return an Error, or baseline with a documented invariant)"),
                        &line.raw,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: obs-doc
// ---------------------------------------------------------------------------

/// Pull every string literal that directly follows `pat` on the line.
pub fn literals_after<'a>(code: &'a str, pat: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(idx) = rest.find(pat) {
        let tail = &rest[idx + pat.len()..];
        if let Some(end) = tail.find('"') {
            out.push(&tail[..end]);
            rest = &tail[end..];
        } else {
            break;
        }
    }
    out
}

/// `format!("fault.fired.{site}")` templates → the §8 placeholder
/// spelling `fault.fired.<site>`.
fn normalize_template(key: &str) -> String {
    key.replace('{', "<").replace('}', ">")
}

/// Expand one §8 key cell: `` `lock.wait_us_sum` / `wait_us_max` `` means
/// both keys share the first key's `lock.` prefix.
fn expand_key_cell(cell: &str) -> Vec<String> {
    let keys: Vec<&str> = cell
        .split('`')
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, k)| k)
        .collect();
    let prefix = keys
        .first()
        .and_then(|k| k.find('.').map(|i| k[..=i].to_string()))
        .unwrap_or_default();
    keys.iter()
        .enumerate()
        .map(|(i, k)| {
            if i == 0 || k.contains('.') {
                (*k).to_string()
            } else {
                format!("{prefix}{k}")
            }
        })
        .collect()
}

/// Keys documented in the DESIGN.md §8 table, with their line numbers.
fn design_section8_keys(design: &str) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    let mut in_section8 = false;
    for (idx, raw) in design.lines().enumerate() {
        if raw.starts_with("## ") {
            in_section8 = raw.starts_with("## 8");
            continue;
        }
        if !in_section8 {
            continue;
        }
        let trimmed = raw.trim();
        if !trimmed.starts_with("| `") {
            continue;
        }
        let Some(cell) = trimmed.split('|').nth(1) else {
            continue;
        };
        for key in expand_key_cell(cell) {
            keys.entry(key).or_insert(idx + 1);
        }
    }
    keys
}

/// Counter keys set in non-test code, with one representative site each.
/// Works over the file's joined code text so a `.set(` whose key literal
/// sits on the next line (rustfmt wraps long calls) is still found.
fn code_obs_keys(files: &[SourceFile]) -> BTreeMap<String, (String, usize)> {
    let mut keys = BTreeMap::new();
    for f in files {
        let mut joined = String::new();
        for line in &f.lines {
            if !line.test && !line.doc {
                joined.push_str(&line.code);
            }
            joined.push('\n');
        }
        let mut pos = 0;
        while let Some(idx) = joined[pos..].find(".set(") {
            let after = pos + idx + ".set(".len();
            let mut key_src = joined[after..].trim_start();
            let mut template = false;
            if let Some(rest) = key_src.strip_prefix("&format!(") {
                key_src = rest.trim_start();
                template = true;
            }
            if let Some(rest) = key_src.strip_prefix('"') {
                if let Some(end) = rest.find('"') {
                    let key = if template {
                        normalize_template(&rest[..end])
                    } else {
                        rest[..end].to_string()
                    };
                    let line_no = joined[..after].matches('\n').count() + 1;
                    keys.entry(key).or_insert((f.rel.clone(), line_no));
                }
            }
            pos = after;
        }
    }
    keys
}

/// Every counter key set in code must appear in the §8 table, and every
/// documented key must still be set somewhere (no dead rows).
pub fn rule_obs_doc(files: &[SourceFile], design: &str) -> Vec<Violation> {
    let documented = design_section8_keys(design);
    let in_code = code_obs_keys(files);
    let mut out = Vec::new();
    for (key, (file, line)) in &in_code {
        if !documented.contains_key(key) {
            out.push(violation(
                "obs-doc",
                file,
                *line,
                format!("counter key `{key}` is set here but missing from the DESIGN.md \u{a7}8 table"),
                key,
            ));
        }
    }
    for (key, line) in &documented {
        if !in_code.contains_key(key) {
            out.push(violation(
                "obs-doc",
                "DESIGN.md",
                *line,
                format!("documented counter key `{key}` is never set in code (dead row)"),
                key,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: fault-site
// ---------------------------------------------------------------------------

/// The two files whose `pub mod site` blocks form the fault-site catalog.
const SITE_CATALOG_FILES: [&str; 2] = ["crates/brahma/src/fault.rs", "crates/ira/src/chaos.rs"];

#[derive(Debug)]
struct SiteConst {
    name: String,
    value: String,
    file: String,
    line: usize,
}

/// `pub const NAME: &str = "dotted.value";` declarations in a catalog file.
fn catalog_consts(f: &SourceFile) -> Vec<SiteConst> {
    let mut out = Vec::new();
    for (no, line) in f.code_lines() {
        let Some(idx) = line.code.find("pub const ") else {
            continue;
        };
        let tail = &line.code[idx + "pub const ".len()..];
        let Some((name, rest)) = tail.split_once(':') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("&str") else {
            continue;
        };
        let Some(value) = literals_after(rest, "\"").first().copied() else {
            continue;
        };
        out.push(SiteConst {
            name: name.trim().to_string(),
            value: value.to_string(),
            file: f.rel.clone(),
            line: no,
        });
    }
    out
}

/// The identifiers listed in a catalog file's sweep arrays: every
/// `…ALL: &[&str] = &[…];` declaration (e.g. `ALL` and `FILE_ALL`),
/// concatenated — the caller only tokenizes this text.
fn catalog_all_list(f: &SourceFile) -> String {
    let mut collecting = false;
    let mut text = String::new();
    for (_, line) in f.code_lines() {
        if !collecting {
            if let Some(idx) = line.code.find("ALL: &[&str]") {
                let tail = &line.code[idx..];
                text.push_str(tail);
                text.push(' ');
                collecting = !tail.contains("];");
            }
        } else {
            text.push_str(&line.code);
            text.push(' ');
            collecting = !line.code.contains("];");
        }
    }
    text
}

/// Fault-site literals must come from the catalog; every catalog const
/// must be swept (listed in its module's `ALL`).
pub fn rule_fault_site(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut registered: BTreeSet<String> = BTreeSet::new();
    for f in files {
        if !SITE_CATALOG_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        let consts = catalog_consts(f);
        let all = catalog_all_list(f);
        for c in &consts {
            registered.insert(c.value.clone());
            let listed = all
                .split(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                .any(|tok| tok == c.name);
            if !listed {
                out.push(violation(
                    "fault-site",
                    &c.file,
                    c.line,
                    format!(
                        "site const `{}` (\"{}\") is not listed in its module's `ALL` sweep array",
                        c.name, c.value
                    ),
                    &c.name,
                ));
            }
        }
    }
    for f in files {
        for (no, line) in f.code_lines() {
            for pat in [".observe(\"", "site: \""] {
                for lit in literals_after(&line.code, pat) {
                    if !registered.contains(lit) {
                        out.push(violation(
                            "fault-site",
                            &f.rel,
                            no,
                            format!(
                                "fault-site literal \"{lit}\" is not registered in a `site` catalog (use the catalog const)"
                            ),
                            &line.raw,
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: deprecated-reorg
// ---------------------------------------------------------------------------

/// The free reorg entry points removed when the `Reorg` builder became the
/// only public way in. The rule bans them outright — definitions and calls
/// alike — so they cannot grow back under the same names.
const BANNED_REORG_FNS: [&str; 5] = [
    "incremental_reorganize",
    "partition_quiesce_reorganize",
    "partition_quiesce_reorganize_with",
    "offline_reorganize",
    "resume_reorganization",
];

/// True when `code` defines `fn <name>`.
fn defines_fn(code: &str, name: &str) -> bool {
    code.find("fn ").is_some_and(|idx| {
        let tail = &code[idx + 3..];
        tail.starts_with(name)
            && !tail[name.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
    })
}

/// True when `code` calls `name(` as a standalone identifier.
fn calls_fn(code: &str, name: &str) -> bool {
    let mut rest = code;
    while let Some(idx) = rest.find(name) {
        let before_ok = rest[..idx]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        let after = &rest[idx + name.len()..];
        if before_ok && after.starts_with('(') {
            return true;
        }
        rest = &rest[idx + name.len()..];
    }
    false
}

/// The free reorg entry points were removed in favor of the `Reorg`
/// builder. Any definition or call under the old names — anywhere in the
/// workspace — is a violation; there is no exempt defining file anymore.
pub fn rule_deprecated(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        for (no, line) in f.code_lines() {
            for name in BANNED_REORG_FNS {
                if defines_fn(&line.code, name) {
                    out.push(violation(
                        "deprecated-reorg",
                        &f.rel,
                        no,
                        format!("reintroduces removed `{name}` (use the Reorg builder)"),
                        &line.raw,
                    ));
                } else if calls_fn(&line.code, name) {
                    out.push(violation(
                        "deprecated-reorg",
                        &f.rel,
                        no,
                        format!("call to removed `{name}` (use the Reorg builder)"),
                        &line.raw,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: raw-parking-lot
// ---------------------------------------------------------------------------

/// All substrate locking must flow through the `lockdep`-instrumented
/// wrappers, or lock-order checking silently loses coverage.
pub fn rule_parking_lot(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/brahma/src") || f.rel.starts_with("crates/ira/src")) {
            continue;
        }
        if f.rel == "crates/brahma/src/lockdep.rs" {
            continue; // the instrumentation layer itself
        }
        for (no, line) in f.code_lines() {
            if line.code.contains("parking_lot") {
                out.push(violation(
                    "raw-parking-lot",
                    &f.rel,
                    no,
                    "direct parking_lot primitive outside the lockdep wrappers (use brahma::lockdep::{Mutex, RwLock, Condvar})"
                        .to_string(),
                    &line.raw,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::preprocess;

    fn src(rel: &str, text: &str) -> SourceFile {
        preprocess(rel, text)
    }

    #[test]
    fn sleep_rule_fires_outside_retry_and_tests() {
        let hot = src(
            "crates/ira/src/pqr.rs",
            "fn f() {\n    std::thread::sleep(d);\n}\n",
        );
        let retry = src(
            "crates/brahma/src/retry.rs",
            "fn f() {\n    std::thread::sleep(d);\n}\n",
        );
        let test = src(
            "crates/ira/src/pqr.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::sleep(d); }\n}\n",
        );
        assert_eq!(rule_sleep(&[hot]).len(), 1);
        assert_eq!(rule_sleep(&[retry]).len(), 0);
        assert_eq!(rule_sleep(&[test]).len(), 0);
    }

    #[test]
    fn unwrap_rule_scopes_to_substrate_crates() {
        let brahma = src("crates/brahma/src/lock.rs", "fn f() { x.unwrap(); }\n");
        let ira = src("crates/ira/src/driver.rs", "fn f() { x.expect(\"m\"); }\n");
        let workload = src("crates/workload/src/driver.rs", "fn f() { x.unwrap(); }\n");
        let doc = src(
            "crates/brahma/src/lib.rs",
            "/// let v = x.unwrap();\nfn f() {}\n",
        );
        assert_eq!(rule_unwrap(&[brahma]).len(), 1);
        assert_eq!(rule_unwrap(&[ira]).len(), 1);
        assert_eq!(rule_unwrap(&[workload]).len(), 0);
        assert_eq!(rule_unwrap(&[doc]).len(), 0);
    }

    const DESIGN_FIXTURE: &str = "\
## 8. Observability

| Key | Incremented at |
|---|---|
| `lock.waits` / `wait_us_sum` | the lock manager |
| `fault.fired.<site>` | the injector |
| `dead.key` | nowhere |

## 9. Next section
| `not.parsed` | outside section 8 |
";

    #[test]
    fn design_key_expansion_handles_prefix_shorthand() {
        let keys = design_section8_keys(DESIGN_FIXTURE);
        assert!(keys.contains_key("lock.waits"));
        assert!(keys.contains_key("lock.wait_us_sum"), "prefix carried over");
        assert!(keys.contains_key("fault.fired.<site>"));
        assert!(!keys.contains_key("not.parsed"), "only §8 rows count");
    }

    #[test]
    fn obs_doc_rule_catches_drift_both_ways() {
        let code = src(
            "crates/brahma/src/lock.rs",
            "fn export(s: &mut Snapshot) {\n    s.set(\"lock.waits\", 1);\n    s.set(\n        \"lock.wait_us_sum\",\n        2,\n    );\n    s.set(\"lock.rogue\", 3);\n    s.set(&format!(\"fault.fired.{site}\"), 4);\n}\n",
        );
        let vs = rule_obs_doc(&[code], DESIGN_FIXTURE);
        let msgs: Vec<&str> = vs.iter().map(|v| v.message.as_str()).collect();
        assert_eq!(vs.len(), 2, "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("lock.rogue")),
            "undocumented key flagged"
        );
        assert!(
            msgs.iter().any(|m| m.contains("dead.key")),
            "dead doc row flagged; wrapped .set( calls must still count"
        );
    }

    const CATALOG_FIXTURE: &str = "\
pub mod site {
    pub const A: &str = \"x.a\";
    pub const B: &str = \"x.b\";
    pub const ALL: &[&str] = &[A];
}
";

    #[test]
    fn fault_site_rule_checks_all_list_and_literals() {
        let catalog = src("crates/brahma/src/fault.rs", CATALOG_FIXTURE);
        let user = src(
            "crates/ira/src/driver.rs",
            "fn f(db: &Db) {\n    db.fault.observe(\"x.a\");\n    db.fault.observe(\"x.rogue\");\n}\n",
        );
        let vs = rule_fault_site(&[catalog, user]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("`B`")), "B not in ALL");
        assert!(vs.iter().any(|v| v.message.contains("x.rogue")));
    }

    #[test]
    fn deprecated_rule_bans_definitions_and_calls() {
        let def = src(
            "crates/ira/src/pqr.rs",
            "pub fn incremental_reorganize(db: &Db) {\n}\n",
        );
        let caller = src(
            "crates/ira/src/driver.rs",
            "fn f(db: &Db) {\n    offline_reorganize(db);\n}\n",
        );
        let clean = src(
            "crates/ira/src/builder.rs",
            "fn g(db: &Db) {\n    Reorg::on(db, p).run();\n    my_offline_reorganizer(db);\n}\n",
        );
        let vs = rule_deprecated(&[def, caller, clean]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.file == "crates/ira/src/pqr.rs"
            && v.message.contains("reintroduces")));
        assert!(vs.iter().any(|v| v.file == "crates/ira/src/driver.rs"
            && v.message.contains("call to removed")));
    }

    #[test]
    fn parking_lot_rule_exempts_lockdep_only() {
        let lockdep = src(
            "crates/brahma/src/lockdep.rs",
            "use parking_lot::Mutex;\n",
        );
        let raw = src("crates/brahma/src/lock.rs", "use parking_lot::Mutex;\n");
        assert_eq!(rule_parking_lot(&[lockdep]).len(), 0);
        assert_eq!(rule_parking_lot(&[raw]).len(), 1);
    }
}
