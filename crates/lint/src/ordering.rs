//! Pass 3: atomic-ordering audit. Every atomic `Ordering::` use outside
//! `crates/obs` must carry an `// ordering:` justification on the same
//! or the immediately preceding line (or a baseline entry). The point is
//! not to forbid `Relaxed` — most counters want it — but to force each
//! site to say *why* its ordering is sufficient, so a reviewer can check
//! the claim instead of guessing.

use crate::report::{violation, Violation};
use crate::source::SourceFile;

/// Atomic variants only; `cmp::Ordering::{Less, Equal, Greater}` in sort
/// comparators is not a memory-ordering decision.
const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub const JUSTIFICATION: &str = "// ordering:";

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if f.rel.starts_with("crates/obs/") {
            continue; // the observability crate is the documented-idiom home
        }
        for (no, line) in f.code_lines() {
            let variant = ATOMIC_VARIANTS
                .iter()
                .find(|v| line.code.contains(&format!("Ordering::{v}")));
            let Some(variant) = variant else { continue };
            let here = line.raw.contains(JUSTIFICATION);
            let above = no >= 2
                && f.lines
                    .get(no - 2)
                    .is_some_and(|l| l.raw.contains(JUSTIFICATION));
            if here || above {
                continue;
            }
            out.push(violation(
                "atomic-ordering",
                &f.rel,
                no,
                format!(
                    "Ordering::{variant} without an `// ordering:` justification on this or \
                     the preceding line; state why this ordering is sufficient"
                ),
                &line.raw,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::preprocess;

    #[test]
    fn unjustified_atomic_ordering_is_flagged_once_per_line() {
        let f = preprocess(
            "crates/brahma/src/x.rs",
            "fn f(a: &AtomicU32) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("Relaxed"));
    }

    #[test]
    fn same_line_and_preceding_line_justifications_pass() {
        let f = preprocess(
            "crates/brahma/src/x.rs",
            "fn f(a: &AtomicU32) {\n    a.fetch_add(1, Ordering::Relaxed); // ordering: stat counter\n    // ordering: pairs with the Acquire load in g()\n    a.store(2, Ordering::Release);\n}\n",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn cmp_ordering_and_obs_crate_are_exempt(
    ) {
        let f = preprocess(
            "crates/brahma/src/x.rs",
            "fn f(a: u32, b: u32) -> Ordering {\n    if a < b { Ordering::Less } else { Ordering::Greater }\n}\n",
        );
        assert!(check(&[f]).is_empty(), "cmp variants are not audited");
        let f = preprocess(
            "crates/obs/src/lib.rs",
            "fn f(a: &AtomicU32) { a.load(Ordering::Acquire); }\n",
        );
        assert!(check(&[f]).is_empty(), "crates/obs is exempt");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = preprocess(
            "crates/brahma/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU32) { a.load(Ordering::SeqCst); }\n}\n",
        );
        assert!(check(&[f]).is_empty());
    }
}
