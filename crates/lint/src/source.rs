//! Workspace walking and the line-oriented source model shared by every
//! pass: comment stripping, `#[cfg(test)]` region tracking, doc-comment
//! flagging (DESIGN.md §17.1).

use std::fs;
use std::path::{Path, PathBuf};

/// One source line, pre-classified for the rules.
#[derive(Debug)]
pub struct Line {
    /// The raw text, for diagnostics and baseline pattern matching.
    pub raw: String,
    /// The raw text with comments removed (string literal contents are
    /// kept — several rules match keys inside them).
    pub code: String,
    /// Inside a `#[cfg(test)]` item, or in a file under a `tests/` dir.
    pub test: bool,
    /// A `///` or `//!` doc-comment line (doc examples are not real code).
    pub doc: bool,
}

#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, `/`-separated.
    pub rel: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lines a code rule should look at: 1-based number + line, excluding
    /// test regions and doc comments.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.test && !l.doc)
            .map(|(i, l)| (i + 1, l))
    }
}

/// Lexer state carried across lines (strings and block comments span
/// lines; a trailing `\` keeps a normal string open).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LexState {
    Code,
    Str,
    /// Raw string with this many `#`s in its delimiter.
    RawStr(usize),
    BlockComment,
}

/// Scan one line: append everything that is not a comment to `code`,
/// count braces that appear outside strings and comments into `depth`,
/// and return the state to carry into the next line.
pub fn scan_line(line: &str, state: LexState, code: &mut String, depth: &mut i64) -> LexState {
    let b = line.as_bytes();
    let mut st = state;
    let mut i = 0;
    while i < b.len() {
        match st {
            LexState::BlockComment => {
                if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = LexState::Code;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if b[i] == b'\\' {
                    if let Some(&c) = b.get(i + 1) {
                        code.push(c as char);
                    }
                    code.push('\\');
                    i += 2;
                } else {
                    if b[i] == b'"' {
                        st = LexState::Code;
                    }
                    code.push(b[i] as char);
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if b[i] == b'"' && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
                {
                    for &c in &b[i..=i + hashes] {
                        code.push(c as char);
                    }
                    st = LexState::Code;
                    i += 1 + hashes;
                } else {
                    code.push(b[i] as char);
                    i += 1;
                }
            }
            LexState::Code => {
                let c = b[i];
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    break; // line comment: drop the rest of the line
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = LexState::BlockComment;
                    i += 2;
                    continue;
                }
                if c == b'r' || c == b'b' {
                    // Possible raw-string opener r"…", r#"…"#, br"…".
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let hashes = b[j..].iter().take_while(|&&x| x == b'#').count();
                    if b.get(j + hashes) == Some(&b'"') {
                        for &x in &b[i..=j + hashes] {
                            code.push(x as char);
                        }
                        st = LexState::RawStr(hashes);
                        i = j + hashes + 1;
                        continue;
                    }
                }
                if c == b'"' {
                    st = LexState::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                if c == b'\'' {
                    // Char literal ('x', '\n', '\'') vs lifetime ('a in
                    // <'a>). A literal closes within a few bytes; copy it
                    // whole so a '{' char cannot skew the brace depth.
                    if b.get(i + 1) == Some(&b'\\') {
                        let end = b[i + 2..].iter().position(|&x| x == b'\'');
                        if let Some(off) = end {
                            for &x in &b[i..=i + 2 + off] {
                                code.push(x as char);
                            }
                            i += 3 + off;
                            continue;
                        }
                    } else if b.get(i + 2) == Some(&b'\'') {
                        for &x in &b[i..i + 3] {
                            code.push(x as char);
                        }
                        i += 3;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                if c == b'{' {
                    *depth += 1;
                } else if c == b'}' {
                    *depth -= 1;
                }
                code.push(c as char);
                i += 1;
            }
        }
    }
    st
}

/// Classify a whole file: strip comments, track `#[cfg(test)]` brace
/// regions, flag doc-comment lines.
pub fn preprocess(rel: &str, text: &str) -> SourceFile {
    let whole_file_test = rel.starts_with("tests/") || rel.contains("/tests/");
    let mut lines = Vec::new();
    let mut st = LexState::Code;
    let mut depth: i64 = 0;
    // Brace depths at which a `#[cfg(test)]` item opened a region.
    let mut test_regions: Vec<i64> = Vec::new();
    let mut pending_cfg_test = false;

    for raw in text.lines() {
        let depth_before = depth;
        let st_before = st;
        let mut code = String::new();
        st = scan_line(raw, st, &mut code, &mut depth);

        let trimmed_raw = raw.trim_start();
        let doc = st_before == LexState::Code
            && (trimmed_raw.starts_with("///") || trimmed_raw.starts_with("//!"));

        let trimmed = code.trim();
        if !trimmed.is_empty() {
            if trimmed.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && !trimmed.starts_with("#[") {
                if depth > depth_before {
                    // The gated item opens a brace region (mod/fn/impl).
                    test_regions.push(depth_before);
                    pending_cfg_test = false;
                } else if trimmed.ends_with(';') {
                    // Braceless gated item (`use …;`): just this line.
                    pending_cfg_test = false;
                }
            }
        }
        let test = whole_file_test || !test_regions.is_empty() || pending_cfg_test;
        while let Some(&d) = test_regions.last() {
            if depth <= d && depth < depth_before {
                test_regions.pop();
            } else {
                break;
            }
        }

        lines.push(Line {
            raw: raw.to_string(),
            code,
            test,
            doc,
        });
    }
    SourceFile {
        rel: rel.to_string(),
        lines,
    }
}

pub fn repo_root() -> PathBuf {
    // crates/lint/ → repo root is two levels up from this manifest.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn collect_paths(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == "shims" || path.ends_with("crates/lint") {
                continue;
            }
            collect_paths(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

pub fn load_sources(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_paths(&root.join(top), &mut paths);
    }
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(p).unwrap_or_default();
            preprocess(&rel, &text)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(rel: &str, text: &str) -> SourceFile {
        preprocess(rel, text)
    }

    #[test]
    fn scanner_strips_comments_and_keeps_strings() {
        let mut code = String::new();
        let mut depth = 0;
        let st = scan_line(
            "let x = \"a // not a comment {\"; // real comment {",
            LexState::Code,
            &mut code,
            &mut depth,
        );
        assert_eq!(st, LexState::Code);
        assert_eq!(code, "let x = \"a // not a comment {\"; ");
        assert_eq!(depth, 0, "braces inside strings must not count");
    }

    #[test]
    fn scanner_carries_strings_and_block_comments_across_lines() {
        let mut code = String::new();
        let mut depth = 0;
        let st = scan_line("let s = \"open \\", LexState::Code, &mut code, &mut depth);
        assert_eq!(st, LexState::Str);
        let st = scan_line("still inside\";", st, &mut code, &mut depth);
        assert_eq!(st, LexState::Code);

        let mut code = String::new();
        let st = scan_line("/* begin {", LexState::Code, &mut code, &mut depth);
        assert_eq!(st, LexState::BlockComment);
        let st = scan_line("end } */ let y = 1;", st, &mut code, &mut depth);
        assert_eq!(st, LexState::Code);
        assert_eq!(code.trim(), "let y = 1;");
        assert_eq!(depth, 0);
    }

    #[test]
    fn scanner_handles_raw_strings_and_char_literals() {
        let mut code = String::new();
        let mut depth = 0;
        let st = scan_line(
            "let r = r#\"{ // not code \"#; let c = '{';",
            LexState::Code,
            &mut code,
            &mut depth,
        );
        assert_eq!(st, LexState::Code);
        assert_eq!(depth, 0, "raw-string and char-literal braces must not count");
    }

    #[test]
    fn cfg_test_regions_are_excluded() {
        let f = src(
            "crates/brahma/src/x.rs",
            "fn hot() {\n    work();\n}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\nfn after() {}\n",
        );
        let flags: Vec<bool> = f.lines.iter().map(|l| l.test).collect();
        assert!(!flags[0] && !flags[1], "real code is not test");
        assert!(flags[5] && flags[6], "inside the cfg(test) mod is test");
        assert!(!flags[9], "code after the mod closes is not test");
    }

    #[test]
    fn files_under_tests_dirs_are_all_test() {
        let f = src("crates/ira/tests/sweep.rs", "fn x() { y.unwrap(); }\n");
        assert!(f.lines[0].test);
    }
}
