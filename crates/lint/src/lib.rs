//! Whole-source static analyzer for the repo's concurrency invariants.
//!
//! Three analysis passes run over a hand-rolled token/item model of
//! every workspace source file (no external deps, no execution):
//!
//! 1. **lock-graph** — build the static held-before graph over the
//!    `LockClass` universe and report any cycle (ABBA hazard) with
//!    file:line provenance for each edge.
//! 2. **guard-blocking** — flag `thread::sleep`, `retry_backoff`, and
//!    fault-site evaluation while a guard is lexically held.
//! 3. **atomic-ordering** — every atomic `Ordering::` use outside
//!    `crates/obs` needs an `// ordering:` justification.
//!
//! The legacy line-oriented rules (sleep, unwrap, obs-doc, fault-site,
//! deprecated-reorg, raw-parking-lot) ride on the same source model.
//! All passes report through `lint-baseline.toml`. See DESIGN.md §17.

pub mod baseline;
pub mod lockgraph;
pub mod ordering;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;
pub mod tokens;

use std::fs;
use std::path::Path;

use baseline::{AllowEntry, Baseline};
use report::{sort_findings, Violation};

pub struct RunResult {
    /// Findings that survived the baseline, in committed output order.
    pub violations: Vec<Violation>,
    /// Baseline entries that waived nothing (stale debt — an error).
    pub unused: Vec<AllowEntry>,
    pub graph: lockgraph::StaticGraph,
    pub files: usize,
    pub debug: Vec<String>,
}

/// Run every pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<RunResult, String> {
    let files = source::load_sources(root);
    if files.is_empty() {
        return Err(format!("no sources found under {}", root.display()));
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();

    let mut violations = Vec::new();
    violations.extend(rules::rule_sleep(&files));
    violations.extend(rules::rule_unwrap(&files));
    violations.extend(rules::rule_obs_doc(&files, &design));
    violations.extend(rules::rule_fault_site(&files));
    violations.extend(rules::rule_deprecated(&files));
    violations.extend(rules::rule_parking_lot(&files));

    let analysis = lockgraph::analyze(&files);
    violations.extend(analysis.violations);
    violations.extend(ordering::check(&files));

    let baseline_path = root.join("lint-baseline.toml");
    let mut baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(_) => Baseline::parse("")?,
    };
    violations.retain(|v| !baseline.waives(v));
    sort_findings(&mut violations);
    let unused: Vec<AllowEntry> = baseline.unused().cloned().collect();

    Ok(RunResult {
        violations,
        unused,
        graph: analysis.graph,
        files: files.len(),
        debug: analysis.debug,
    })
}

/// Analyze an explicit set of (path, text) sources — used by the fixture
/// golden tests to run the passes over files the workspace walk skips.
pub fn analyze_sources(srcs: &[(&str, &str)]) -> (Vec<Violation>, lockgraph::StaticGraph) {
    let files: Vec<source::SourceFile> = srcs
        .iter()
        .map(|(rel, text)| source::preprocess(rel, text))
        .collect();
    let analysis = lockgraph::analyze(&files);
    let mut violations = analysis.violations;
    violations.extend(ordering::check(&files));
    sort_findings(&mut violations);
    (violations, analysis.graph)
}
