//! Pass 1 (static lock graph) and pass 2 (guard-across-blocking).
//!
//! The pass walks every function body, tracks which classed lock guards
//! are lexically held at each point, and propagates acquisitions over an
//! approximate, type-assisted, name-based call graph. The result is a
//! static held-before graph over the `LockClass` universe; any cycle is
//! an ABBA hazard reported with file:line provenance for each edge.
//! Semantics, the over-approximation policy, and the resolution ladder
//! are documented in DESIGN.md §17.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{self, FileAst};
use crate::report::{violation, Violation};
use crate::source::SourceFile;
use crate::tokens::{tokenize, Tok, TokKind};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Provenance of one static held-before edge `from -> to`.
#[derive(Debug, Clone)]
pub struct EdgeProv {
    /// Where the held (outer) guard was acquired.
    pub held_file: String,
    pub held_line: usize,
    /// Where the inner acquisition happens (the acquisition itself, or
    /// the call site that transitively reaches it).
    pub acq_file: String,
    pub acq_line: usize,
    /// For call-derived edges: the transitive witness acquisition.
    pub via: Option<String>,
}

#[derive(Debug, Default)]
pub struct StaticGraph {
    /// `(from class, to class) -> first-witness provenance`. Self-edges
    /// (same-class nesting) are kept in the graph — the runtime order-key
    /// discipline owns their correctness — but excluded from cycle
    /// findings.
    pub edges: BTreeMap<(String, String), EdgeProv>,
}

impl StaticGraph {
    pub fn has(&self, from: &str, to: &str) -> bool {
        self.edges.contains_key(&(from.to_string(), to.to_string()))
    }
}

pub struct Analysis {
    pub violations: Vec<Violation>,
    pub graph: StaticGraph,
    /// Resolution diagnostics for `LINT_DEBUG` (unresolved receivers,
    /// counts); not part of the committed output.
    pub debug: Vec<String>,
}

// ---------------------------------------------------------------------
// chains

#[derive(Debug, Clone, Copy, PartialEq)]
enum SegKind {
    Plain,
    Call,
    Index,
}

#[derive(Debug, Clone)]
struct Seg {
    name: String,
    kind: SegKind,
}

fn match_back(toks: &[Tok], close: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &toks[j].text;
        if t == close_s {
            depth += 1;
        } else if t == open_s {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

fn find_close(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j].text;
        if t == open_s {
            depth += 1;
        } else if t == close_s {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parse the postfix chain whose last token is at `last` (inclusive),
/// walking backwards: `self.deques[w]` ← from the `]`, `self.shard(x)`
/// ← from the `)`. Returns segments in source order plus the index of
/// the chain's first token.
fn parse_chain_back(toks: &[Tok], last: usize) -> (Vec<Seg>, usize) {
    let mut segs: Vec<Seg> = Vec::new();
    let mut start = last;
    let mut pending_index = false;
    let mut j = last as i64;
    while j >= 0 {
        let ju = j as usize;
        let t = &toks[ju];
        match t.text.as_str() {
            ")" => {
                let open = match_back(toks, ju, "(", ")");
                if open == 0 {
                    break;
                }
                let name_i = open - 1;
                let nt = &toks[name_i];
                if nt.kind != TokKind::Ident || parser::is_keyword_call(&nt.text) {
                    break;
                }
                segs.push(Seg {
                    name: nt.text.clone(),
                    kind: SegKind::Call,
                });
                pending_index = false;
                start = name_i;
                if name_i >= 2 && toks[name_i - 1].is(".") {
                    j = name_i as i64 - 2;
                } else {
                    break;
                }
            }
            "]" => {
                let open = match_back(toks, ju, "[", "]");
                if open == 0 {
                    break;
                }
                pending_index = true;
                j = open as i64 - 1;
            }
            "?" => j -= 1,
            _ if t.kind == TokKind::Ident => {
                let kind = if pending_index {
                    SegKind::Index
                } else {
                    SegKind::Plain
                };
                segs.push(Seg {
                    name: t.text.clone(),
                    kind,
                });
                pending_index = false;
                start = ju;
                if ju >= 2 && toks[ju - 1].is(".") {
                    j = ju as i64 - 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    segs.reverse();
    (segs, start)
}

// ---------------------------------------------------------------------
// declarations

/// How a `Mutex::new(LockClass::X, …)` expression is owned.
#[derive(Debug)]
enum Owner {
    Field(String),
    Local(String),
    FnReturn(String),
    Unknown,
}

/// Walk backwards from the expression start to find what the lock
/// expression is bound to: a struct-literal field, a `let` local, or a
/// function's return (tail) expression.
fn attribute_owner(toks: &[Tok], expr_start: usize) -> Owner {
    let mut j = expr_start as i64 - 1;
    let mut steps = 0;
    while j >= 0 && steps < 800 {
        steps += 1;
        let ju = j as usize;
        let t = &toks[ju];
        match t.text.as_str() {
            ":" => {
                if ju >= 1 && toks[ju - 1].kind == TokKind::Ident {
                    let name = toks[ju - 1].text.clone();
                    let is_let = (ju >= 2 && toks[ju - 2].is_ident("let"))
                        || (ju >= 3
                            && toks[ju - 2].is_ident("mut")
                            && toks[ju - 3].is_ident("let"));
                    return if is_let { Owner::Local(name) } else { Owner::Field(name) };
                }
                return Owner::Unknown;
            }
            "=" => {
                // `let [mut] NAME [: TY] = expr` — search back inside the
                // statement for `let`.
                let mut k = j - 1;
                while k >= 0 {
                    let ku = k as usize;
                    let kt = &toks[ku].text;
                    if kt == ";" || kt == "{" || kt == "}" {
                        break;
                    }
                    if toks[ku].is_ident("let") {
                        let mut n = ku + 1;
                        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                            n += 1;
                        }
                        if let Some(nt) = toks.get(n) {
                            if nt.kind == TokKind::Ident {
                                return Owner::Local(nt.text.clone());
                            }
                        }
                        return Owner::Unknown;
                    }
                    k -= 1;
                }
                return Owner::Unknown;
            }
            "->" => {
                // Tail expression of a fn body: find the fn name.
                let mut k = j - 1;
                while k >= 0 && steps < 800 {
                    steps += 1;
                    if toks[k as usize].is_ident("fn") {
                        if let Some(nt) = toks.get(k as usize + 1) {
                            if nt.kind == TokKind::Ident {
                                return Owner::FnReturn(nt.text.clone());
                            }
                        }
                        return Owner::Unknown;
                    }
                    k -= 1;
                }
                return Owner::Unknown;
            }
            ";" => {
                // Skip the entire previous statement: back to the nearest
                // `{` or `;` at this brace level.
                let mut depth = 0i32;
                j -= 1;
                while j >= 0 {
                    match toks[j as usize].text.as_str() {
                        "}" => depth += 1,
                        "{" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j -= 1;
                }
            }
            ")" => j = match_back(toks, ju, "(", ")") as i64 - 1,
            "]" => j = match_back(toks, ju, "[", "]") as i64 - 1,
            "}" => j = match_back(toks, ju, "{", "}") as i64 - 1,
            "|" => {
                // Closure parameter list: skip back to the opening `|`.
                let mut k = j - 1;
                while k >= 0 {
                    let kt = &toks[k as usize].text;
                    if kt == "|" || kt == "{" || kt == ";" {
                        break;
                    }
                    k -= 1;
                }
                j = if k >= 0 && toks[k as usize].is("|") { k - 1 } else { k };
            }
            "{" => j -= 1,
            _ => j -= 1,
        }
    }
    Owner::Unknown
}

/// Head type of the lock's payload (third `Mutex::new` argument):
/// `Page::new()` → `Page`, `WalInner::default()` → `WalInner`.
fn payload_head(toks: &[Tok], class_idx: usize) -> Option<String> {
    // toks[class_idx] is the class name; expect `, KEY , VALUE`.
    let mut j = class_idx + 1;
    if !toks.get(j)?.is(",") {
        return None;
    }
    j += 1;
    // Skip the order-key expression to the next top-level comma.
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            "," if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let head = toks.get(j + 1)?;
    if head.kind == TokKind::Ident && head.text.chars().next().is_some_and(|c| c.is_uppercase()) {
        Some(head.text.clone())
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// per-file data and the cross-file index

struct FileInfo {
    rel: String,
    toks: Vec<Tok>,
    ast: FileAst,
    /// `spawn(…)` argument ranges `(open_paren, close_paren)`: closures in
    /// there run on other threads, so guards held outside are not held
    /// inside (and their acquisitions are not the spawning fn's).
    spawns: Vec<(usize, usize)>,
}

#[derive(Default)]
struct Index {
    /// `(file, field name) -> class` for classed lock fields.
    field_class_file: BTreeMap<(usize, String), String>,
    /// `(owner type, field name) -> class`.
    field_class_type: BTreeMap<(String, String), String>,
    /// Global field-name fallback; used only when unambiguous.
    field_class_global: BTreeMap<String, BTreeSet<String>>,
    /// `(file, fn, local name) -> class` for lock-object locals and
    /// `for`-loop bindings over classed lock collections.
    local_class: BTreeMap<(usize, usize, String), String>,
    /// Locals that are guard bindings: shadow any same-named field.
    local_shadow: BTreeSet<(usize, usize, String)>,
    /// `(file, fn, local name) -> type head` from params and typed lets.
    local_ty: BTreeMap<(usize, usize, String), String>,
    /// Fns returning a fresh classed lock, by name (`new_page`).
    fnret_class: BTreeMap<String, BTreeSet<String>>,
    /// Accessor fns returning `&Mutex`/`&RwLock` to a classed field.
    accessor_class: BTreeMap<(String, String), String>,
    /// `class -> payload type head`.
    inner_ty: BTreeMap<String, String>,
    /// Return-type aliases of lock constructors (`PageRef -> PageLatch`).
    alias_class: BTreeMap<String, String>,
    /// Struct field types `(owner, name) -> head`.
    field_ty: BTreeMap<(String, String), String>,
    /// `(self type or "", fn name) -> deep return-type head`.
    fn_ret_ty: BTreeMap<(String, String), String>,
    /// `(self type or "", fn name) -> fn ids`.
    fn_index: BTreeMap<(String, String), Vec<(usize, usize)>>,
    /// Every type name seen as a struct or impl target.
    known_types: BTreeSet<String>,
}

/// Strip references/wrappers off a return type and resolve `Self`.
fn deep_head(ty: &[String], self_ty: Option<&str>) -> Option<String> {
    let mut i = 0;
    loop {
        let t = ty.get(i)?;
        match t.as_str() {
            "&" | "mut" | "dyn" => i += 1,
            s if s.starts_with('\'') => i += 1,
            "Arc" | "Box" | "Rc" | "Option" | "Result"
                if ty.get(i + 1).is_some_and(|n| n == "<") =>
            {
                i += 2
            }
            _ => break,
        }
    }
    let t = ty.get(i)?;
    if !t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        return None;
    }
    if t == "Self" {
        return self_ty.map(str::to_string);
    }
    Some(t.clone())
}

#[derive(Debug, Clone, PartialEq)]
enum St {
    /// The chain so far evaluates to a value of this type.
    Ty(String),
    /// The chain so far names a classed lock object.
    Lock(String),
    Unknown,
}

struct Ctx<'a> {
    infos: &'a [FileInfo],
    ix: &'a Index,
}

impl Ctx<'_> {
    fn global_unique_field(&self, name: &str) -> Option<String> {
        let set = self.ix.field_class_global.get(name)?;
        if set.len() == 1 {
            set.iter().next().cloned()
        } else {
            None
        }
    }

    fn first_seg(&self, fi: usize, fnid: usize, seg: &Seg) -> St {
        let n = &seg.name;
        let key = (fi, fnid, n.clone());
        if seg.kind == SegKind::Call {
            if let Some(set) = self.ix.fnret_class.get(n) {
                if set.len() == 1 {
                    return St::Lock(set.iter().next().unwrap().clone());
                }
            }
            // Free function in scope: same file preferred, else unique.
            if let Some(t) = self.ix.fn_ret_ty.get(&(String::new(), n.clone())) {
                return St::Ty(t.clone());
            }
            return St::Unknown;
        }
        if n == "self" {
            return match self.infos[fi].ast.fns[fnid].self_ty.clone() {
                Some(t) => St::Ty(t),
                None => St::Unknown,
            };
        }
        if self.ix.local_shadow.contains(&key) {
            return St::Unknown; // a guard binding, not the lock itself
        }
        if let Some(c) = self.ix.local_class.get(&key) {
            return St::Lock(c.clone());
        }
        if let Some(t) = self.ix.local_ty.get(&key) {
            if let Some(c) = self.ix.alias_class.get(t) {
                return St::Lock(c.clone());
            }
            return St::Ty(t.clone());
        }
        if let Some(c) = self.ix.field_class_file.get(&(fi, n.clone())) {
            return St::Lock(c.clone());
        }
        if let Some(c) = self.global_unique_field(n) {
            return St::Lock(c);
        }
        // Name hint: page-latch handles conventionally travel as `p`/`page`.
        if (n == "p" || n == "page" || n == "pg")
            && self.ix.alias_class.values().any(|c| c == "PageLatch")
        {
            return St::Lock("PageLatch".to_string());
        }
        St::Unknown
    }

    fn next_seg(&self, fi: usize, st: St, seg: &Seg) -> St {
        let n = &seg.name;
        if seg.kind == SegKind::Call && ACQUIRE_METHODS.contains(&n.as_str()) {
            // Guard deref: the chain continues with the payload type.
            if let St::Lock(c) = st {
                return match self.ix.inner_ty.get(&c) {
                    Some(t) => St::Ty(t.clone()),
                    None => St::Unknown,
                };
            }
            return St::Unknown;
        }
        match (&st, seg.kind) {
            (St::Ty(t), SegKind::Call) => {
                if let Some(c) = self.ix.accessor_class.get(&(t.clone(), n.clone())) {
                    return St::Lock(c.clone());
                }
                if let Some(r) = self.ix.fn_ret_ty.get(&(t.clone(), n.clone())) {
                    if let Some(c) = self.ix.alias_class.get(r) {
                        return St::Lock(c.clone());
                    }
                    return St::Ty(r.clone());
                }
                St::Unknown
            }
            (St::Ty(t), _) => {
                if let Some(c) = self.ix.field_class_type.get(&(t.clone(), n.clone())) {
                    return St::Lock(c.clone());
                }
                if let Some(ft) = self.ix.field_ty.get(&(t.clone(), n.clone())) {
                    if let Some(c) = self.ix.alias_class.get(ft) {
                        return St::Lock(c.clone());
                    }
                    return St::Ty(ft.clone());
                }
                St::Unknown
            }
            (_, SegKind::Plain) | (_, SegKind::Index) => {
                if let Some(c) = self.ix.field_class_file.get(&(fi, n.clone())) {
                    return St::Lock(c.clone());
                }
                if let Some(c) = self.global_unique_field(n) {
                    return St::Lock(c);
                }
                St::Unknown
            }
            (_, SegKind::Call) => {
                // Untyped receiver: a unique accessor name still resolves.
                let hits: BTreeSet<&String> = self
                    .ix
                    .accessor_class
                    .iter()
                    .filter(|((_, f), _)| f == n)
                    .map(|(_, c)| c)
                    .collect();
                if hits.len() == 1 {
                    return St::Lock((*hits.iter().next().unwrap()).clone());
                }
                St::Unknown
            }
        }
    }

    fn walk_chain(&self, fi: usize, fnid: usize, segs: &[Seg]) -> St {
        let mut st = St::Unknown;
        for (k, seg) in segs.iter().enumerate() {
            st = if k == 0 {
                self.first_seg(fi, fnid, seg)
            } else {
                self.next_seg(fi, st, seg)
            };
        }
        st
    }

    /// Resolve the lock class of an acquisition's receiver chain.
    fn resolve_acquisition(&self, fi: usize, fnid: usize, segs: &[Seg]) -> Option<String> {
        match self.walk_chain(fi, fnid, segs) {
            St::Lock(c) => Some(c),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// the pass driver lives in `analyze` below; building blocks first

/// One `.lock()`/`.read()`/`.write()`/`try_*()` site.
struct Acq {
    fi: usize,
    fnid: usize,
    dot: usize,
    /// Index just past the closing `)` of the acquisition call.
    after: usize,
    line: usize,
    class: Option<String>,
    /// End of the guard's lexical scope (token index, exclusive).
    scope_end: usize,
}

/// Find where a guard's scope ends when bound with `let g = …`: the end
/// of the enclosing block, or an explicit `drop(g)`.
fn binding_scope_end(toks: &[Tok], after: usize, name: &str) -> usize {
    let mut depth = 0i32;
    let mut j = after;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {
                if toks[j].is_ident("drop")
                    && toks.get(j + 1).is_some_and(|t| t.is("("))
                    && toks.get(j + 2).is_some_and(|t| t.is_ident(name))
                    && toks.get(j + 3).is_some_and(|t| t.is(")"))
                {
                    return j;
                }
            }
        }
        j += 1;
    }
    toks.len()
}

/// Scope end for a guard temporary: Rust temporaries live to the end of
/// the enclosing statement, including any block that statement continues
/// into (`if let Some(x) = m.lock().pop() { … }` holds the guard for the
/// whole body in the worst case, which is the over-approximation we
/// want).
fn temporary_scope_end(toks: &[Tok], after: usize) -> usize {
    let mut depth = 0i32;
    let mut entered_block = false;
    let mut j = after;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                if depth == 0 {
                    entered_block = true;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
                if depth == 0 && entered_block {
                    match toks.get(j + 1).map(|t| t.text.as_str()) {
                        Some("else") => {}
                        Some(".") | Some("?") => entered_block = false,
                        _ => return j,
                    }
                }
            }
            ";" if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Does a spawn range swallow `site`, having started after `after` (i.e.
/// while the guard was already held)? Such sites run on another thread.
fn site_moved_to_thread(spawns: &[(usize, usize)], after: usize, site: usize) -> bool {
    spawns.iter().any(|&(o, c)| o > after && site > o && site < c)
}

fn in_any_spawn(spawns: &[(usize, usize)], site: usize) -> bool {
    spawns.iter().any(|&(o, c)| site > o && site < c)
}

// ---------------------------------------------------------------------

pub fn analyze(files: &[SourceFile]) -> Analysis {
    let infos: Vec<FileInfo> = files
        .iter()
        .map(|f| {
            let toks = tokenize(f);
            let ast = parser::parse(&toks);
            let mut spawns = Vec::new();
            for i in 0..toks.len() {
                if toks[i].is_ident("spawn") && toks.get(i + 1).is_some_and(|t| t.is("(")) {
                    spawns.push((i + 1, find_close(&toks, i + 1, "(", ")")));
                }
            }
            FileInfo {
                rel: f.rel.clone(),
                toks,
                ast,
                spawns,
            }
        })
        .collect();

    let mut ix = Index::default();
    build_type_index(&infos, &mut ix);
    harvest_declarations(&infos, &mut ix);
    harvest_locals(&infos, &mut ix);

    let ctx = Ctx { infos: &infos, ix: &ix };
    let (acqs, mut debug) = collect_acquisitions(&ctx);
    let facts = collect_facts(&ctx, &acqs);
    let may = fixpoint(&facts);

    let mut graph = StaticGraph::default();
    let mut violations = Vec::new();
    build_edges_and_blocking(&ctx, files, &acqs, &facts, &may, &mut graph, &mut violations);
    violations.extend(cycle_findings(&graph));

    debug.push(format!(
        "lock-graph: {} classed acquisition sites, {} edges",
        acqs.iter().filter(|a| a.class.is_some()).count(),
        graph.edges.len()
    ));
    for ((a, b), p) in &graph.edges {
        debug.push(format!(
            "edge {a} -> {b}: held {}:{}, acquired {}:{}{}",
            p.held_file,
            p.held_line,
            p.acq_file,
            p.acq_line,
            p.via.as_deref().map(|v| format!(" ({v})")).unwrap_or_default()
        ));
    }

    Analysis {
        violations,
        graph,
        debug,
    }
}

fn build_type_index(infos: &[FileInfo], ix: &mut Index) {
    for (fi, info) in infos.iter().enumerate() {
        for f in &info.ast.fields {
            ix.known_types.insert(f.owner.clone());
            if let Some(t) = &f.ty_head {
                ix.field_ty
                    .entry((f.owner.clone(), f.name.clone()))
                    .or_insert_with(|| t.clone());
            }
        }
        for (fnid, f) in info.ast.fns.iter().enumerate() {
            if let Some(t) = &f.self_ty {
                ix.known_types.insert(t.clone());
            }
            let ty_key = f.self_ty.clone().unwrap_or_default();
            ix.fn_index
                .entry((ty_key.clone(), f.name.clone()))
                .or_default()
                .push((fi, fnid));
            if let Some(h) = deep_head(&f.ret, f.self_ty.as_deref()) {
                ix.fn_ret_ty.entry((ty_key, f.name.clone())).or_insert(h);
            }
        }
    }
}

fn harvest_declarations(infos: &[FileInfo], ix: &mut Index) {
    for (fi, info) in infos.iter().enumerate() {
        let toks = &info.toks;
        for i in 0..toks.len() {
            if !(toks[i].is_ident("Mutex") || toks[i].is_ident("RwLock")) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("new"))
                && toks.get(i + 3).is_some_and(|t| t.is("("))
                && toks.get(i + 4).is_some_and(|t| t.is_ident("LockClass"))
                && toks.get(i + 5).is_some_and(|t| t.is("::")))
            {
                continue;
            }
            let Some(class_tok) = toks.get(i + 6) else { continue };
            let class = class_tok.text.clone();
            if let Some(inner) = payload_head(toks, i + 6) {
                ix.inner_ty.entry(class.clone()).or_insert(inner);
            }
            // Unwrap `Arc::new(`, `Box::new(` wrappers around the lock.
            let mut s = i;
            while s >= 4
                && toks[s - 1].is("(")
                && toks[s - 2].is_ident("new")
                && toks[s - 3].is("::")
                && ["Arc", "Box", "Rc"].iter().any(|w| toks[s - 4].is_ident(w))
            {
                s -= 4;
            }
            match attribute_owner(toks, s) {
                Owner::Field(name) => {
                    ix.field_class_file
                        .entry((fi, name.clone()))
                        .or_insert_with(|| class.clone());
                    ix.field_class_global
                        .entry(name.clone())
                        .or_default()
                        .insert(class.clone());
                    for f in &info.ast.fields {
                        if f.name == name {
                            ix.field_class_type
                                .entry((f.owner.clone(), name.clone()))
                                .or_insert_with(|| class.clone());
                        }
                    }
                }
                Owner::Local(name) => {
                    if let Some(fnid) = parser::enclosing_fn(&info.ast, i) {
                        ix.local_class.insert((fi, fnid, name), class.clone());
                    }
                }
                Owner::FnReturn(fn_name) => {
                    ix.fnret_class
                        .entry(fn_name.clone())
                        .or_default()
                        .insert(class.clone());
                    for f in &info.ast.fns {
                        if f.name == fn_name {
                            if let Some(h) = deep_head(&f.ret, f.self_ty.as_deref()) {
                                if h != "Mutex" && h != "RwLock" {
                                    ix.alias_class.entry(h).or_insert_with(|| class.clone());
                                }
                            }
                        }
                    }
                }
                Owner::Unknown => {}
            }
        }
    }
    // Accessor fns: return a `&Mutex`/`&RwLock` and reference a classed
    // field of their own file (`fn shard(&self, …) -> &Mutex<…>`).
    for (fi, info) in infos.iter().enumerate() {
        for f in &info.ast.fns {
            let returns_lock = f.ret.iter().any(|t| t == "Mutex" || t == "RwLock");
            if !returns_lock {
                continue;
            }
            let Some(self_ty) = &f.self_ty else { continue };
            let Some((open, close)) = f.body else { continue };
            for j in open..close {
                if info.toks[j].kind != TokKind::Ident {
                    continue;
                }
                if let Some(c) = ix.field_class_file.get(&(fi, info.toks[j].text.clone())) {
                    ix.accessor_class
                        .entry((self_ty.clone(), f.name.clone()))
                        .or_insert_with(|| c.clone());
                    break;
                }
            }
        }
    }
}

/// Collect per-fn local typing: parameter types, `let` bindings (typed,
/// lock-constructor results, guard shadows), and `for`-loop bindings
/// over classed lock collections.
fn harvest_locals(infos: &[FileInfo], ix: &mut Index) {
    for (fi, info) in infos.iter().enumerate() {
        let toks = &info.toks;
        for (fnid, f) in info.ast.fns.iter().enumerate() {
            // Parameters: from the name token, the list sits right after.
            let mut j = f
                .body
                .map(|(open, _)| open)
                .unwrap_or(usize::MAX)
                .min(toks.len());
            // Find the param open paren by scanning forward from the name.
            let mut p = None;
            for k in 0..toks.len() {
                if toks[k].is_ident("fn")
                    && toks.get(k + 1).is_some_and(|t| t.is_ident(&f.name))
                    && toks[k + 1].line == f.line
                {
                    let mut m = k + 2;
                    if toks.get(m).is_some_and(|t| t.is("<")) {
                        let mut depth = 0i32;
                        while m < toks.len() {
                            match toks[m].text.as_str() {
                                "<" => depth += 1,
                                ">" => {
                                    depth -= 1;
                                    if depth <= 0 {
                                        m += 1;
                                        break;
                                    }
                                }
                                "{" | ";" => break,
                                _ => {}
                            }
                            m += 1;
                        }
                    }
                    if toks.get(m).is_some_and(|t| t.is("(")) {
                        p = Some(m);
                    }
                    break;
                }
            }
            if let Some(open) = p {
                let close = find_close(toks, open, "(", ")");
                let mut k = open + 1;
                let mut depth = 0i32;
                while k < close {
                    match toks[k].text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        ":" if depth == 0 && toks[k - 1].kind == TokKind::Ident => {
                            let name = toks[k - 1].text.clone();
                            let mut ty = Vec::new();
                            let mut m = k + 1;
                            let mut d2 = 0i32;
                            while m < close {
                                match toks[m].text.as_str() {
                                    "," if d2 == 0 => break,
                                    "<" | "(" | "[" => d2 += 1,
                                    ">" | ")" | "]" => d2 -= 1,
                                    _ => {}
                                }
                                ty.push(toks[m].text.clone());
                                m += 1;
                            }
                            if let Some(h) = deep_head(&ty, f.self_ty.as_deref()) {
                                let key = (fi, fnid, name);
                                if let Some(c) = ix.alias_class.get(&h) {
                                    ix.local_class.entry(key).or_insert_with(|| c.clone());
                                } else {
                                    ix.local_ty.entry(key).or_insert(h);
                                }
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            j = j.min(toks.len());
            let Some((open, close)) = f.body else { continue };
            let _ = j;
            harvest_fn_body_locals(infos, ix, fi, fnid, open, close);
        }
    }
}

fn harvest_fn_body_locals(
    infos: &[FileInfo],
    ix: &mut Index,
    fi: usize,
    fnid: usize,
    open: usize,
    close: usize,
) {
    let info = &infos[fi];
    let toks = &info.toks;
    let mut i = open + 1;
    while i < close {
        // `for NAME in <chain> {` over a classed lock collection.
        if toks[i].is_ident("for")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_ident("in"))
        {
            let name = toks[i + 1].text.clone();
            let mut j = i + 3;
            let mut depth = 0i32;
            while j < close {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let mut e = j as i64 - 1;
            // Peel a trailing `.iter()` / `.iter_mut()`.
            if e >= 3
                && toks[e as usize].is(")")
                && toks[e as usize - 1].is("(")
                && (toks[e as usize - 2].is_ident("iter")
                    || toks[e as usize - 2].is_ident("iter_mut"))
                && toks[e as usize - 3].is(".")
            {
                e -= 4;
            }
            if e > i as i64 + 2 {
                let (segs, _) = parse_chain_back(toks, e as usize);
                let has_acquire = segs
                    .iter()
                    .any(|s| s.kind == SegKind::Call && ACQUIRE_METHODS.contains(&s.name.as_str()));
                if !segs.is_empty() && !has_acquire {
                    let ctx = Ctx { infos, ix };
                    if let St::Lock(c) = ctx.walk_chain(fi, fnid, &segs) {
                        ix.local_class.insert((fi, fnid, name), c);
                    }
                }
            }
            i = j + 1;
            continue;
        }
        // `let [mut] NAME [: TY] = RHS ;`
        if toks[i].is_ident("let") {
            let mut n = i + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            let Some(name_tok) = toks.get(n) else {
                i += 1;
                continue;
            };
            if name_tok.kind != TokKind::Ident
                || toks.get(n + 1).is_some_and(|t| t.is("(")) // destructure
            {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let mut j = n + 1;
            // Optional type ascription.
            if toks.get(j).is_some_and(|t| t.is(":")) {
                let mut ty = Vec::new();
                let mut depth = 0i32;
                let mut m = j + 1;
                while m < close {
                    match toks[m].text.as_str() {
                        "=" if depth == 0 => break,
                        ";" if depth == 0 => break,
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        _ => {}
                    }
                    ty.push(toks[m].text.clone());
                    m += 1;
                }
                let self_ty = info.ast.fns[fnid].self_ty.clone();
                if let Some(h) = deep_head(&ty, self_ty.as_deref()) {
                    let key = (fi, fnid, name.clone());
                    if let Some(c) = ix.alias_class.get(&h) {
                        ix.local_class.entry(key).or_insert_with(|| c.clone());
                    } else if h != "Mutex" && h != "RwLock" {
                        ix.local_ty.entry(key).or_insert(h);
                    }
                }
                j = m;
            }
            if !toks.get(j).is_some_and(|t| t.is("=")) {
                i = j;
                continue;
            }
            // RHS: up to the `;` at this depth.
            let start = j + 1;
            let mut depth = 0i32;
            let mut end = start;
            while end < close {
                match toks[end].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            if end > start {
                let mut e = end - 1;
                if toks[e].is("?") && e > start {
                    e -= 1;
                }
                let (segs, _) = parse_chain_back(toks, e);
                if !segs.is_empty() {
                    let last_is_acquire = segs.last().is_some_and(|s| {
                        s.kind == SegKind::Call && ACQUIRE_METHODS.contains(&s.name.as_str())
                    });
                    if last_is_acquire {
                        ix.local_shadow.insert((fi, fnid, name.clone()));
                    } else {
                        // `T::ctor(…)` path call: type via fn_ret_ty.
                        let qualified = segs.len() == 1
                            && toks.get(e).is_some_and(|t| t.is(")"))
                            && {
                                let op = match_back(toks, e, "(", ")");
                                op >= 2 && toks[op - 2].is("::")
                            };
                        let st = if qualified {
                            let op = match_back(toks, e, "(", ")");
                            let q = &toks[op - 3];
                            let fname = &toks[op - 1].text;
                            let ty = if q.is_ident("Self") {
                                info.ast.fns[fnid].self_ty.clone().unwrap_or_default()
                            } else {
                                q.text.clone()
                            };
                            match ix.fn_ret_ty.get(&(ty, fname.clone())) {
                                Some(t) => St::Ty(t.clone()),
                                None => St::Unknown,
                            }
                        } else {
                            let ctx = Ctx { infos, ix };
                            ctx.walk_chain(fi, fnid, &segs)
                        };
                        let key = (fi, fnid, name.clone());
                        match st {
                            St::Lock(c) => {
                                ix.local_class.entry(key).or_insert(c);
                            }
                            St::Ty(t) => {
                                if let Some(c) = ix.alias_class.get(&t) {
                                    ix.local_class.entry(key).or_insert_with(|| c.clone());
                                } else {
                                    ix.local_ty.entry(key).or_insert(t);
                                }
                            }
                            St::Unknown => {}
                        }
                    }
                }
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
}

fn collect_acquisitions(ctx: &Ctx) -> (Vec<Acq>, Vec<String>) {
    let mut out = Vec::new();
    let mut debug = Vec::new();
    for (fi, info) in ctx.infos.iter().enumerate() {
        if info.rel.ends_with("/lockdep.rs") {
            continue; // the instrumentation layer itself
        }
        let toks = &info.toks;
        for i in 0..toks.len() {
            if !toks[i].is(".") {
                continue;
            }
            let Some(m) = toks.get(i + 1) else { continue };
            if m.kind != TokKind::Ident || !ACQUIRE_METHODS.contains(&m.text.as_str()) {
                continue;
            }
            if !(toks.get(i + 2).is_some_and(|t| t.is("("))
                && toks.get(i + 3).is_some_and(|t| t.is(")")))
            {
                continue;
            }
            let Some(fnid) = parser::enclosing_fn(&info.ast, i) else {
                continue;
            };
            let (segs, start) = parse_chain_back(toks, i.saturating_sub(1));
            let class = ctx.resolve_acquisition(fi, fnid, &segs);
            if class.is_none() {
                debug.push(format!(
                    "unresolved acquisition {}:{} (.{})",
                    info.rel, m.line, m.text
                ));
            }
            let after = i + 4;
            // Guard binding: `let [mut] NAME = <chain>.lock();` — the
            // acquire call must be the *final* postfix op of the RHS.
            // `let v = shard.lock().iter()...collect();` binds `v` to the
            // collected data, not the guard: that guard is a temporary
            // dropped at the `;` (the ParentMap clone shape).
            let rhs_ends_at_acquire = toks
                .get(after)
                .is_none_or(|t| t.is(";") || (t.is("?") && toks.get(after + 1).is_some_and(|t| t.is(";"))));
            let binding = if rhs_ends_at_acquire && start >= 1 && toks[start - 1].is("=") {
                let mut k = start as i64 - 2;
                let mut found = None;
                while k >= 0 {
                    let kt = &toks[k as usize].text;
                    if kt == ";" || kt == "{" || kt == "}" {
                        break;
                    }
                    if toks[k as usize].is_ident("let") {
                        let mut n = k as usize + 1;
                        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                            n += 1;
                        }
                        if let Some(nt) = toks.get(n) {
                            if nt.kind == TokKind::Ident
                                && nt.text != "_"
                                && !toks.get(n + 1).is_some_and(|t| t.is("("))
                            {
                                found = Some(nt.text.clone());
                            }
                        }
                        break;
                    }
                    k -= 1;
                }
                found
            } else {
                None
            };
            let scope_end = match &binding {
                Some(name) => binding_scope_end(toks, after, name),
                None => temporary_scope_end(toks, after),
            };
            out.push(Acq {
                fi,
                fnid,
                dot: i,
                after,
                line: m.line,
                class,
                scope_end,
            });
        }
    }
    (out, debug)
}

/// One resolved call site inside a function body: token position, source
/// line, and the `(file, fn)` ids it may dispatch to.
type CallSite = (usize, usize, Vec<(usize, usize)>);

/// Per-fn facts: directly acquired classes (with a witness site) and
/// resolved call sites.
#[derive(Default)]
struct Facts {
    direct: BTreeMap<String, (String, usize)>,
    calls: Vec<CallSite>,
}

/// Method names we refuse to resolve by name alone. On an *untyped*
/// receiver these are std-prelude / collection / io calls on plain data
/// in practice; resolving them to same-named workspace methods (e.g.
/// a HashMap guard's `.remove(..)` hitting `Ert::remove`) floods
/// `MayAcquire` sets with false classes and manufactures cycles. Typed
/// receivers still resolve workspace methods that share these names.
const STD_METHODS: &[&str] = &[
    "abs", "all", "and_then", "any", "append", "as_bytes", "as_mut", "as_ref", "as_slice",
    "borrow", "borrow_mut", "chain", "clear", "clone", "cloned", "cmp", "collect",
    "compare_exchange", "contains", "contains_key", "copied", "count", "create", "dedup",
    "drain", "entry", "enumerate", "eq", "expect", "extend", "fetch_add", "fetch_and",
    "fetch_or", "fetch_sub", "filter", "filter_map", "find", "first", "flat_map", "flatten",
    "flush", "fmt", "fold", "get", "get_mut", "get_or_init", "hash", "insert", "into_iter",
    "is_empty", "is_err", "is_none", "is_ok", "is_some", "iter", "iter_mut", "join", "keys",
    "last", "len", "load", "map", "map_err", "max", "max_by_key", "metadata", "min",
    "min_by_key", "next", "notify_all", "notify_one", "ok", "open", "or_else", "or_insert",
    "or_insert_with", "parse", "partial_cmp", "pop", "position", "push", "read",
    "read_exact", "read_to_end", "recv", "remove", "replace", "reserve", "resize", "retain",
    "rev", "seek", "send", "set_len", "sort", "sort_by", "sort_by_key", "sort_unstable",
    "split", "split_off", "store", "sum", "swap", "swap_remove", "sync_all", "sync_data",
    "take", "to_owned", "to_string", "to_vec", "trim", "truncate", "try_recv", "unwrap_or",
    "unwrap_or_default", "unwrap_or_else", "values", "values_mut", "wait", "wrapping_add",
    "write", "write_all", "zip",
];

/// Name-based fallback for a call whose receiver (or free-fn path) could
/// not be typed: same-file definitions win; otherwise the name must be
/// *unambiguous* across the workspace (exactly one defining body).
/// Ambiguous names over-approximate into false held-before cycles, so we
/// drop them and let the runtime cross-check catch anything real we miss.
fn fallback_by_name(ctx: &Ctx, fi: usize, n: &str, methods_only: bool) -> Vec<(usize, usize)> {
    if STD_METHODS.contains(&n) {
        return Vec::new();
    }
    let mut all: Vec<(usize, usize)> = Vec::new();
    for ((self_ty, fname), ids) in &ctx.ix.fn_index {
        if fname == n && (!methods_only || !self_ty.is_empty()) {
            all.extend(
                ids.iter()
                    .copied()
                    .filter(|&(f, id)| ctx.infos[f].ast.fns[id].body.is_some()),
            );
        }
    }
    if methods_only {
        // No same-file shortcut for methods: `child.partition()` inside
        // db.rs must not prefer `Database::partition` over
        // `PhysAddr::partition` just by proximity — ambiguity drops both.
        return if all.len() == 1 { all } else { Vec::new() };
    }
    let same_file: Vec<(usize, usize)> = all.iter().copied().filter(|(f, _)| *f == fi).collect();
    if !same_file.is_empty() {
        same_file
    } else if all.len() == 1 {
        all
    } else {
        Vec::new()
    }
}

fn resolve_call(ctx: &Ctx, fi: usize, fnid: usize, i: usize) -> Vec<(usize, usize)> {
    let toks = &ctx.infos[fi].toks;
    let n = toks[i].text.clone();
    // `0..foo(x)` tokenizes as `0 . . foo (` — two dots make a range, not
    // a method call; fall through to the bare-call branch.
    let is_method = i >= 1 && toks[i - 1].is(".") && !(i >= 2 && toks[i - 2].is("."));
    if is_method {
        let (segs, _) = parse_chain_back(toks, i.saturating_sub(2));
        match ctx.walk_chain(fi, fnid, &segs) {
            St::Ty(t) => ctx
                .ix
                .fn_index
                .get(&(t, n))
                .cloned()
                .unwrap_or_default(),
            St::Lock(_) => Vec::new(), // method on the lock wrapper itself
            St::Unknown => fallback_by_name(ctx, fi, &n, true),
        }
    } else if i >= 2 && toks[i - 1].is("::") && toks[i - 2].kind == TokKind::Ident {
        let q = &toks[i - 2].text;
        let ty = if q == "Self" {
            ctx.infos[fi].ast.fns[fnid].self_ty.clone().unwrap_or_default()
        } else if ctx.ix.known_types.contains(q) {
            q.clone()
        } else {
            return Vec::new(); // std/module path (`thread::spawn`, `mem::take`)
        };
        ctx.ix.fn_index.get(&(ty, n)).cloned().unwrap_or_default()
    } else {
        // Bare call: free fns, same file preferred, unique otherwise.
        let all = ctx
            .ix
            .fn_index
            .get(&(String::new(), n))
            .cloned()
            .unwrap_or_default();
        let same_file: Vec<(usize, usize)> =
            all.iter().copied().filter(|(f, _)| *f == fi).collect();
        if !same_file.is_empty() {
            same_file
        } else if all.len() == 1 {
            all
        } else {
            Vec::new()
        }
    }
}

fn is_call_site(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Ident
        && toks.get(i + 1).is_some_and(|t| t.is("("))
        && !parser::is_keyword_call(&toks[i].text)
        && !ACQUIRE_METHODS.contains(&toks[i].text.as_str())
        && toks[i].text != "spawn"
        && toks[i].text != "drop"
}

fn collect_facts(ctx: &Ctx, acqs: &[Acq]) -> BTreeMap<(usize, usize), Facts> {
    let mut facts: BTreeMap<(usize, usize), Facts> = BTreeMap::new();
    for a in acqs {
        let Some(c) = &a.class else { continue };
        let info = &ctx.infos[a.fi];
        if in_any_spawn(&info.spawns, a.dot) {
            continue; // runs on a spawned thread, not the enclosing fn
        }
        facts
            .entry((a.fi, a.fnid))
            .or_default()
            .direct
            .entry(c.clone())
            .or_insert_with(|| (info.rel.clone(), a.line));
    }
    for (fi, info) in ctx.infos.iter().enumerate() {
        if info.rel.ends_with("/lockdep.rs") {
            continue;
        }
        let toks = &info.toks;
        for (fnid, f) in info.ast.fns.iter().enumerate() {
            let Some((open, close)) = f.body else { continue };
            for i in open + 1..close {
                if !is_call_site(toks, i) {
                    continue;
                }
                if parser::enclosing_fn(&info.ast, i) != Some(fnid) {
                    continue; // belongs to a nested fn
                }
                if in_any_spawn(&info.spawns, i) {
                    continue;
                }
                let callees = resolve_call(ctx, fi, fnid, i);
                if !callees.is_empty() {
                    facts
                        .entry((fi, fnid))
                        .or_default()
                        .calls
                        .push((i, toks[i].line, callees));
                }
            }
        }
    }
    facts
}

type May = BTreeMap<(usize, usize), BTreeMap<String, (String, usize)>>;

fn fixpoint(facts: &BTreeMap<(usize, usize), Facts>) -> May {
    let mut may: May = facts
        .iter()
        .map(|(k, f)| (*k, f.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (k, f) in facts {
            let mut add: Vec<(String, (String, usize))> = Vec::new();
            for (_, _, callees) in &f.calls {
                for callee in callees {
                    if let Some(set) = may.get(callee) {
                        for (c, w) in set {
                            add.push((c.clone(), w.clone()));
                        }
                    }
                }
            }
            let entry = may.entry(*k).or_default();
            for (c, w) in add {
                if let std::collections::btree_map::Entry::Vacant(e) = entry.entry(c) {
                    e.insert(w);
                    changed = true;
                }
            }
        }
        if !changed {
            return may;
        }
    }
}

fn build_edges_and_blocking(
    ctx: &Ctx,
    files: &[SourceFile],
    acqs: &[Acq],
    facts: &BTreeMap<(usize, usize), Facts>,
    may: &May,
    graph: &mut StaticGraph,
    violations: &mut Vec<Violation>,
) {
    // Blocking-op sites per file: (tok pos, line, op).
    let mut blocking: BTreeMap<usize, Vec<(usize, usize, &'static str)>> = BTreeMap::new();
    for (fi, info) in ctx.infos.iter().enumerate() {
        if info.rel.ends_with("/lockdep.rs") {
            continue;
        }
        let toks = &info.toks;
        for j in 0..toks.len() {
            let op = if toks[j].is_ident("sleep")
                && j >= 2
                && toks[j - 1].is("::")
                && toks[j - 2].is_ident("thread")
            {
                Some("thread::sleep")
            } else if toks[j].is_ident("retry_backoff") {
                Some("retry_backoff")
            } else if (toks[j].is_ident("hit") || toks[j].is_ident("observe"))
                && j >= 2
                && toks[j - 1].is(".")
                && toks[j - 2].is_ident("fault")
            {
                Some("fault-site evaluation")
            } else {
                None
            };
            if let Some(op) = op {
                blocking.entry(fi).or_default().push((j, toks[j].line, op));
            }
        }
    }

    let mut seen_blocking: BTreeSet<(String, usize, String, &'static str)> = BTreeSet::new();
    for a in acqs {
        let Some(held) = &a.class else { continue };
        let info = &ctx.infos[a.fi];
        // Direct nested acquisitions.
        for b in acqs {
            if b.fi != a.fi || b.dot <= a.after || b.dot >= a.scope_end {
                continue;
            }
            if site_moved_to_thread(&info.spawns, a.after, b.dot) {
                continue;
            }
            let Some(inner) = &b.class else { continue };
            graph
                .edges
                .entry((held.clone(), inner.clone()))
                .or_insert_with(|| EdgeProv {
                    held_file: info.rel.clone(),
                    held_line: a.line,
                    acq_file: info.rel.clone(),
                    acq_line: b.line,
                    via: None,
                });
        }
        // Call-derived edges.
        if let Some(f) = facts.get(&(a.fi, a.fnid)) {
            for (pos, line, callees) in &f.calls {
                if *pos <= a.after || *pos >= a.scope_end {
                    continue;
                }
                if site_moved_to_thread(&info.spawns, a.after, *pos) {
                    continue;
                }
                for callee in callees {
                    let Some(set) = may.get(callee) else { continue };
                    let callee_name = &ctx.infos[callee.0].ast.fns[callee.1].name;
                    for (inner, (wf, wl)) in set {
                        graph
                            .edges
                            .entry((held.clone(), inner.clone()))
                            .or_insert_with(|| EdgeProv {
                                held_file: info.rel.clone(),
                                held_line: a.line,
                                acq_file: info.rel.clone(),
                                acq_line: *line,
                                via: Some(format!(
                                    "via call to `{callee_name}`, lock taken at {wf}:{wl}"
                                )),
                            });
                    }
                }
            }
        }
        // Pass 2: blocking operations inside the guard scope.
        if let Some(sites) = blocking.get(&a.fi) {
            for (pos, line, op) in sites {
                if *pos <= a.after || *pos >= a.scope_end {
                    continue;
                }
                if site_moved_to_thread(&info.spawns, a.after, *pos) {
                    continue;
                }
                let key = (info.rel.clone(), *line, held.clone(), *op);
                if !seen_blocking.insert(key) {
                    continue;
                }
                let raw = files[a.fi]
                    .lines
                    .get(line - 1)
                    .map(|l| l.raw.as_str())
                    .unwrap_or("");
                violations.push(violation(
                    "guard-blocking",
                    &info.rel,
                    *line,
                    format!(
                        "{op} while a `{held}` guard is lexically held (acquired at {}:{}); \
                         blocking with a lock held stalls every contender",
                        info.rel, a.line
                    ),
                    raw,
                ));
            }
        }
    }

    // Callback edges: a closure literal passed to a workspace fn runs
    // with whatever that fn holds when it invokes the parameter — a
    // higher-order call the name-based graph cannot see (the
    // `MigrationMap::resolve_child` shape: shard guard held while the
    // caller's `repoint` closure locks a TraversalShard). We
    // over-approximate: every class the callee may acquire is assumed
    // held around every class the closure argument acquires, directly
    // or through its own resolved calls.
    for ((fi, _), f) in facts {
        let info = &ctx.infos[*fi];
        let toks = &info.toks;
        for (pos, line, callees) in &f.calls {
            if callees.is_empty() {
                continue;
            }
            let open = pos + 1;
            let Some(close) = match_paren(toks, open) else { continue };
            let Some(bar) = (open + 1..close).find(|&j| toks[j].is("|")) else {
                continue;
            };
            // Classes acquired inside the closure argument.
            let mut inner: BTreeMap<String, (String, usize)> = BTreeMap::new();
            for a2 in acqs {
                if a2.fi == *fi && a2.dot > bar && a2.dot < close {
                    if let Some(c) = &a2.class {
                        inner
                            .entry(c.clone())
                            .or_insert((info.rel.clone(), a2.line));
                    }
                }
            }
            for (pos2, _, callees2) in &f.calls {
                if *pos2 <= bar || *pos2 >= close {
                    continue;
                }
                for callee2 in callees2 {
                    if let Some(set) = may.get(callee2) {
                        for (c, w) in set {
                            inner.entry(c.clone()).or_insert(w.clone());
                        }
                    }
                }
            }
            if inner.is_empty() {
                continue;
            }
            for callee in callees {
                let Some(held_set) = may.get(callee) else { continue };
                let callee_name = &ctx.infos[callee.0].ast.fns[callee.1].name;
                for (held, (hf, hl)) in held_set {
                    for (acq_class, (af, al)) in &inner {
                        graph
                            .edges
                            .entry((held.clone(), acq_class.clone()))
                            .or_insert_with(|| EdgeProv {
                                held_file: hf.clone(),
                                held_line: *hl,
                                acq_file: af.clone(),
                                acq_line: *al,
                                via: Some(format!(
                                    "via closure passed to `{callee_name}` at {}:{line}",
                                    info.rel
                                )),
                            });
                    }
                }
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open`, if any.
fn match_paren(toks: &[Tok], open: usize) -> Option<usize> {
    if !toks.get(open)?.is("(") {
        return None;
    }
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is("(") {
            depth += 1;
        } else if t.is(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn cycle_findings(graph: &StaticGraph) -> Vec<Violation> {
    // Adjacency without self-edges (same-class nesting is governed by
    // the runtime order-key discipline, not the class graph).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in graph.edges.keys() {
        if a != b {
            adj.entry(a).or_default().insert(b);
        }
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    for &s in &nodes {
        let mut path = vec![s];
        let mut on: BTreeSet<&str> = [s].into();
        dfs_cycles(s, s, &adj, &mut path, &mut on, &mut cycles);
        if cycles.len() >= 50 {
            break;
        }
    }
    let mut out = Vec::new();
    for cyc in cycles {
        let sig = {
            let mut s = cyc.join(" -> ");
            s.push_str(" -> ");
            s.push_str(&cyc[0]);
            s
        };
        let mut msg = format!("static lock-order cycle: {sig}");
        let mut first_edge: Option<&EdgeProv> = None;
        for w in 0..cyc.len() {
            let from = &cyc[w];
            let to = &cyc[(w + 1) % cyc.len()];
            if let Some(p) = graph.edges.get(&(from.clone(), to.clone())) {
                if first_edge.is_none() {
                    first_edge = Some(p);
                }
                msg.push_str(&format!(
                    "\n    {from} -> {to}: {}:{} acquires {to} while {from} held since {}:{}{}",
                    p.acq_file,
                    p.acq_line,
                    p.held_file,
                    p.held_line,
                    p.via
                        .as_deref()
                        .map(|v| format!(" ({v})"))
                        .unwrap_or_default()
                ));
            }
        }
        let (file, line) = first_edge
            .map(|p| (p.acq_file.clone(), p.acq_line))
            .unwrap_or_default();
        let mut v = violation("lock-graph", &file, line, msg, "");
        v.excerpt = sig;
        out.push(v);
    }
    out
}

fn dfs_cycles<'g>(
    v: &'g str,
    start: &'g str,
    adj: &BTreeMap<&'g str, BTreeSet<&'g str>>,
    path: &mut Vec<&'g str>,
    on: &mut BTreeSet<&'g str>,
    cycles: &mut Vec<Vec<String>>,
) {
    if cycles.len() >= 50 || path.len() > 8 {
        return;
    }
    let Some(next) = adj.get(v) else { return };
    for &w in next {
        if w == start {
            cycles.push(path.iter().map(|s| s.to_string()).collect());
        } else if w > start && !on.contains(w) {
            path.push(w);
            on.insert(w);
            dfs_cycles(w, start, adj, path, on, cycles);
            path.pop();
            on.remove(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::preprocess;

    fn run(srcs: &[(&str, &str)]) -> Analysis {
        let files: Vec<SourceFile> = srcs.iter().map(|(rel, text)| preprocess(rel, text)).collect();
        analyze(&files)
    }

    const ABBA: &str = r#"
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl Pair {
    pub fn new() -> Self {
        Pair {
            a: Mutex::new(LockClass::TestA, 0, 0u32),
            b: Mutex::new(LockClass::TestB, 0, 0u32),
        }
    }
    pub fn ab(&self) {
        let g = self.a.lock();
        *self.b.lock() += *g;
    }
    pub fn ba(&self) {
        let g = self.b.lock();
        *self.a.lock() += *g;
    }
}
"#;

    #[test]
    fn abba_cycle_is_reported_with_both_edges() {
        let an = run(&[("crates/x/src/pair.rs", ABBA)]);
        assert!(an.graph.has("TestA", "TestB"));
        assert!(an.graph.has("TestB", "TestA"));
        let cyc: Vec<&Violation> = an
            .violations
            .iter()
            .filter(|v| v.rule == "lock-graph")
            .collect();
        assert_eq!(cyc.len(), 1, "one canonical cycle: {:?}", an.violations);
        assert!(cyc[0].message.contains("TestA -> TestB -> TestA"));
        assert!(cyc[0].message.contains("pair.rs:15"), "{}", cyc[0].message);
        assert!(cyc[0].message.contains("pair.rs:19"), "{}", cyc[0].message);
    }

    #[test]
    fn one_direction_only_is_clean() {
        let src = r#"
pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    pub fn new() -> Self {
        Pair { a: Mutex::new(LockClass::TestA, 0, 0u32), b: Mutex::new(LockClass::TestB, 0, 0u32) }
    }
    pub fn ab(&self) {
        let g = self.a.lock();
        *self.b.lock() += *g;
    }
    pub fn ab2(&self) {
        let g = self.a.lock();
        *self.b.lock() += *g;
    }
}
"#;
        let an = run(&[("crates/x/src/pair.rs", src)]);
        assert!(an.graph.has("TestA", "TestB"));
        assert!(!an.graph.has("TestB", "TestA"));
        assert!(an.violations.iter().all(|v| v.rule != "lock-graph"));
    }

    #[test]
    fn call_graph_propagates_held_sets() {
        let src = r#"
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn new() -> Self {
        S { a: Mutex::new(LockClass::TestA, 0, 0u32), b: Mutex::new(LockClass::TestB, 0, 0u32) }
    }
    fn deep(&self) -> u32 {
        *self.b.lock()
    }
    pub fn outer(&self) -> u32 {
        let g = self.a.lock();
        *g + self.deep()
    }
}
"#;
        let an = run(&[("crates/x/src/s.rs", src)]);
        let p = an
            .graph
            .edges
            .get(&("TestA".to_string(), "TestB".to_string()))
            .expect("call-derived edge");
        assert!(p.via.is_some(), "edge should be call-derived: {p:?}");
    }

    #[test]
    fn drop_ends_a_guard_scope() {
        let src = r#"
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn new() -> Self {
        S { a: Mutex::new(LockClass::TestA, 0, 0u32), b: Mutex::new(LockClass::TestB, 0, 0u32) }
    }
    pub fn disjoint(&self) {
        let g = self.a.lock();
        let x = *g;
        drop(g);
        *self.b.lock() += x;
    }
}
"#;
        let an = run(&[("crates/x/src/s.rs", src)]);
        assert!(!an.graph.has("TestA", "TestB"), "{:?}", an.graph.edges);
    }

    #[test]
    fn spawned_closures_do_not_inherit_held_guards() {
        let src = r#"
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn new() -> Self {
        S { a: Mutex::new(LockClass::TestA, 0, 0u32), b: Mutex::new(LockClass::TestB, 0, 0u32) }
    }
    pub fn go(&self) {
        let g = self.a.lock();
        std::thread::spawn(move || {
            let _h = self.b.lock();
        });
        let _ = *g;
    }
}
"#;
        let an = run(&[("crates/x/src/s.rs", src)]);
        assert!(!an.graph.has("TestA", "TestB"), "{:?}", an.graph.edges);
    }

    #[test]
    fn accessor_fn_resolves_to_its_field_class() {
        let src = r#"
pub struct Map { shards: Vec<Mutex<u32>> }
impl Map {
    pub fn new() -> Self {
        Map { shards: (0..4).map(|i| Mutex::new(LockClass::TestA, i as u64, 0u32)).collect() }
    }
    fn shard(&self, k: usize) -> &Mutex<u32> {
        &self.shards[k % 4]
    }
    pub fn bump(&self, k: usize, other: &Mutex<u32>) {
        let g = self.shard(k).lock();
        let _ = *g;
    }
}
"#;
        let an = run(&[("crates/x/src/map.rs", src)]);
        // The accessor chain must resolve: no unresolved sites.
        assert!(
            an.debug.iter().all(|d| !d.contains("unresolved")),
            "{:?}",
            an.debug
        );
    }

    #[test]
    fn guard_blocking_flags_sleep_under_guard() {
        let src = r#"
pub struct S { a: Mutex<u32> }
impl S {
    pub fn new() -> Self {
        S { a: Mutex::new(LockClass::TestA, 0, 0u32) }
    }
    pub fn bad(&self) {
        let g = self.a.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = *g;
    }
    pub fn fine(&self) {
        {
            let g = self.a.lock();
            let _ = *g;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
"#;
        let an = run(&[("crates/x/src/s.rs", src)]);
        let hits: Vec<&Violation> = an
            .violations
            .iter()
            .filter(|v| v.rule == "guard-blocking")
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", an.violations);
        assert_eq!(hits[0].line, 9);
        assert!(hits[0].message.contains("TestA"));
    }

    #[test]
    fn for_loop_over_classed_shards_binds_the_element() {
        let src = r#"
pub struct Map { shards: Vec<Mutex<u32>> }
impl Map {
    pub fn new() -> Self {
        Map { shards: (0..4).map(|i| Mutex::new(LockClass::TestA, i as u64, 0u32)).collect() }
    }
    pub fn total(&self) -> u32 {
        let mut t = 0;
        for shard in &self.shards {
            t += *shard.lock();
        }
        t
    }
}
"#;
        let an = run(&[("crates/x/src/map.rs", src)]);
        assert!(
            an.debug.iter().all(|d| !d.contains("unresolved")),
            "{:?}",
            an.debug
        );
    }
}
