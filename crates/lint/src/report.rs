//! The finding type every pass reports through, and its deterministic
//! ordering (path, line, rule — machine-diffable, DESIGN.md §17.4).

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
    /// The offending line text, matched against baseline `pattern`s.
    pub excerpt: String,
}

pub fn violation(
    rule: &'static str,
    file: &str,
    line: usize,
    message: String,
    excerpt: &str,
) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        message,
        excerpt: excerpt.trim().to_string(),
    }
}

/// Sort findings into the committed output order: path, then line, then
/// rule id. Every caller that prints findings sorts first, so two runs
/// over the same tree emit byte-identical reports.
pub fn sort_findings(violations: &mut [Violation]) {
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
}
