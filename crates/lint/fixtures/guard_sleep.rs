//! Golden fixture: a blocking operation under a lexically held guard.
//!
//! `drain_slowly` sleeps while the WalInner guard is live — the
//! guard-blocking pass must report exactly one finding at the sleep
//! line (17). `drain_politely` shows the clean shape: the guard is
//! dropped before the sleep, so no finding.

use crate::lockdep::{LockClass, Mutex};

pub struct Queue {
    inner: Mutex<Vec<u32>>,
}

impl Queue {
    pub fn drain_slowly(&self) {
        let mut q = self.inner.lock();
        thread::sleep(Duration::from_millis(1));
        q.clear();
    }

    pub fn drain_politely(&self) {
        {
            let mut q = self.inner.lock();
            q.clear();
        }
        thread::sleep(Duration::from_millis(1));
    }

    pub fn new() -> Self {
        Queue {
            inner: Mutex::new(LockClass::WalInner, 0, Vec::new()),
        }
    }
}
