//! Golden fixture: an unjustified atomic `Ordering::` use.
//!
//! `bump` uses `Ordering::Relaxed` with no `// ordering:` comment — the
//! atomic-ordering pass must report exactly one finding at line 8.
//! `read` carries the justification and stays clean.

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(c: &AtomicU64) -> u64 {
    // ordering: monotonic counter; no cross-thread ordering is derived
    c.load(Ordering::Relaxed)
}
