//! Golden fixture: the pre-"snapshot ABBA fix" Partition shape.
//!
//! `allocate` orders PartitionAlloc -> PartitionPages; `snapshot` holds
//! the pages read guard as a struct-literal temporary that is still live
//! when the alloc lock is taken, ordering PartitionPages ->
//! PartitionAlloc. The static pass must report exactly this cycle, with
//! file:line provenance for both edges, without executing anything.
//!
//! Lines are load-bearing: the golden test asserts them. Keep the
//! acquisition sites at lines 23-24 (allocate) and 33-34 (snapshot).

use crate::lockdep::{LockClass, Mutex, RwLock};

pub struct Partition {
    alloc: Mutex<AllocState>,
    pages: RwLock<Vec<u32>>,
}

impl Partition {
    // PartitionAlloc -> PartitionPages: the allocation path takes the
    // directory lock, then appends a page under it.
    pub fn allocate(&self) -> u32 {
        let st = self.alloc.lock();
        let mut pages = self.pages.write();
        pages.push(st.next);
        st.next
    }

    // PartitionPages -> PartitionAlloc: the pages guard is a temporary
    // inside the struct literal, still held across the later field.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            pages: self.pages.read().clone(),
            alloc: self.alloc.lock().clone(),
        }
    }

    pub fn new() -> Self {
        Partition {
            alloc: Mutex::new(LockClass::PartitionAlloc, 0, AllocState::default()),
            pages: RwLock::new(LockClass::PartitionPages, 0, Vec::new()),
        }
    }
}
