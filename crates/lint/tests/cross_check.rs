//! Runtime/static cross-check: drive a real brahma+ira workload under
//! lockdep, dump the held-before edges the runtime checker recorded, and
//! require every one of them to be predicted by the static lock graph
//! (static ⊇ runtime). A runtime edge missing statically means the
//! analyzer has a call-resolution gap — that is a CI failure, because the
//! static pass's cycle verdicts are only trustworthy if its graph covers
//! everything the code actually does.
//!
//! The converse direction is *not* checked: the static graph is an
//! over-approximation (it keeps edges from paths this workload never
//! takes), so static-only edges are expected.
//!
//! Lockdep is armed under `debug_assertions` (the default test profile)
//! or the `lockdep` feature; in a plain release test run `dump_edges()`
//! is empty and the check passes vacuously.

use brahma::{lockdep, Database, NewObject, PhysAddr, StoreConfig};
use ira::Reorg;

/// A small anchored object graph across two partitions: cross-partition
/// references populate the ERTs, commits append to the WAL, and the
/// reorganization exercises the lock manager, TRT, traversal index, and
/// migration map — the lock classes whose ordering the paper cares about.
fn build_and_reorganize() {
    let db = Database::new(StoreConfig::default());
    let p0 = db.create_partition();
    let p1 = db.create_partition();

    let mut prev: Option<PhysAddr> = None;
    let mut chain = Vec::new();
    for i in 0..12u8 {
        let mut t = db.begin();
        let refs = prev.map(|p| vec![p]).unwrap_or_default();
        let a = t
            .create_object(
                p1,
                NewObject {
                    tag: i,
                    refs,
                    ref_cap: 4,
                    payload: vec![i, i.wrapping_mul(31)],
                    payload_cap: 8,
                },
            )
            .expect("build chain");
        t.commit().expect("build chain");
        chain.push(a);
        prev = Some(a);
    }
    let mut t = db.begin();
    t.create_object(
        p0,
        NewObject {
            tag: 200,
            refs: vec![*chain.last().unwrap(), chain[chain.len() / 2]],
            ref_cap: 4,
            payload: vec![1],
            payload_cap: 8,
        },
    )
    .expect("anchor");
    t.commit().expect("anchor");

    let outcome = Reorg::on(&db, p1).workers(2).batch(3).run().expect("reorg");
    assert!(outcome.migrated() > 0, "workload must actually migrate");
    brahma::sweep::assert_database_consistent(&db);

    // Touch the observability path too: it nests DbPartitions over the
    // per-partition ERT locks.
    let _ = db.obs_snapshot();
}

#[test]
fn static_graph_covers_runtime_edges() {
    build_and_reorganize();

    let files = lint::source::load_sources(&lint::source::repo_root());
    assert!(!files.is_empty(), "workspace sources must be discoverable");
    let analysis = lint::lockgraph::analyze(&files);
    assert!(
        !analysis.graph.edges.is_empty(),
        "static analysis found no lock edges at all — the pass is broken"
    );

    let mut missing = Vec::new();
    for (from, to, chain) in lockdep::dump_edges() {
        // The checker's own unit tests use the Test* classes for seeded
        // violations; they are not part of the product lock order.
        if from.starts_with("Test") || to.starts_with("Test") {
            continue;
        }
        if !analysis.graph.has(from, to) {
            missing.push(format!("  {from} -> {to} (runtime chain: {chain})"));
        }
    }
    assert!(
        missing.is_empty(),
        "runtime lockdep recorded edges the static graph does not predict \
         (static must over-approximate runtime):\n{}\nstatic edges:\n{}",
        missing.join("\n"),
        analysis
            .graph
            .edges
            .keys()
            .map(|(a, b)| format!("  {a} -> {b}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
}
