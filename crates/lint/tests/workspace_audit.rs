//! Static audits of the real workspace's lock-ordering claims — the
//! invariants the code comments assert, proved over the source instead
//! of hoped-for at runtime:
//!
//! * the work-stealing executor's `WaveDeque` locks are never nested
//!   (one deque guard at a time, release before stealing elsewhere);
//! * `MigrationMap` and `ParentMap` never nest two of their own shards
//!   (same-class nesting is governed by lockdep's order-key discipline,
//!   and both structures are written to avoid it entirely — the
//!   `ParentMap` clone snapshots a shard before inserting into the
//!   target);
//! * the PR that fixed the partition snapshot ABBA keeps the committed
//!   direction: PartitionAlloc -> PartitionPages only.

fn graph() -> lint::lockgraph::StaticGraph {
    let files = lint::source::load_sources(&lint::source::repo_root());
    assert!(!files.is_empty());
    lint::lockgraph::analyze(&files).graph
}

#[test]
fn sharded_classes_never_nest_within_themselves() {
    let g = graph();
    for class in ["WaveDeque", "MigrationShard", "TraversalShard"] {
        assert!(
            !g.has(class, class),
            "{class} nests within itself somewhere: {:?}",
            g.edges.get(&(class.to_string(), class.to_string()))
        );
    }
}

#[test]
fn partition_snapshot_abba_fix_holds() {
    let g = graph();
    assert!(
        g.has("PartitionAlloc", "PartitionPages"),
        "the committed alloc -> pages direction must exist"
    );
    assert!(
        !g.has("PartitionPages", "PartitionAlloc"),
        "pages -> alloc would re-open the snapshot ABBA: {:?}",
        g.edges
            .get(&("PartitionPages".to_string(), "PartitionAlloc".to_string()))
    );
}
