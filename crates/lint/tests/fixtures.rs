//! Golden tests for the three analysis passes: each fixture must yield
//! exactly one finding, with a stable file:line, and nothing else. The
//! fixtures live under `crates/lint/fixtures/` — a directory the
//! workspace walk deliberately skips, so the deliberate violations never
//! leak into the CI run over the real tree.

static ABBA: &str = include_str!("../fixtures/abba.rs");
static GUARD_SLEEP: &str = include_str!("../fixtures/guard_sleep.rs");
static BARE_ORDERING: &str = include_str!("../fixtures/bare_ordering.rs");

#[test]
fn abba_fixture_reports_exactly_the_partition_cycle() {
    let rel = "crates/fixture/src/abba.rs";
    let (violations, graph) = lint::analyze_sources(&[(rel, ABBA)]);

    // Both directions present in the static graph, no execution involved.
    assert!(graph.has("PartitionAlloc", "PartitionPages"));
    assert!(graph.has("PartitionPages", "PartitionAlloc"));

    assert_eq!(violations.len(), 1, "exactly one finding: {violations:#?}");
    let v = &violations[0];
    assert_eq!(v.rule, "lock-graph");
    assert_eq!(v.file, rel);
    // The report anchors at the canonical cycle's first edge: `allocate`
    // taking the pages lock while the alloc lock is held.
    assert_eq!(v.line, 24);
    assert!(
        v.message
            .contains("PartitionAlloc -> PartitionPages -> PartitionAlloc"),
        "cycle signature missing: {}",
        v.message
    );
    // Per-edge provenance: each edge names its acquisition site and the
    // line the held guard was taken on.
    assert!(
        v.message.contains(&format!("{rel}:24 acquires PartitionPages"))
            && v.message.contains(&format!("{rel}:23")),
        "alloc->pages edge provenance missing: {}",
        v.message
    );
    assert!(
        v.message.contains(&format!("{rel}:34 acquires PartitionAlloc"))
            && v.message.contains(&format!("{rel}:33")),
        "pages->alloc edge provenance missing: {}",
        v.message
    );
}

#[test]
fn guard_sleep_fixture_reports_exactly_one_blocking_finding() {
    let rel = "crates/fixture/src/guard_sleep.rs";
    let (violations, graph) = lint::analyze_sources(&[(rel, GUARD_SLEEP)]);
    assert!(graph.edges.is_empty(), "no nesting in this fixture");

    assert_eq!(violations.len(), 1, "exactly one finding: {violations:#?}");
    let v = &violations[0];
    assert_eq!(v.rule, "guard-blocking");
    assert_eq!(v.file, rel);
    assert_eq!(v.line, 17);
    assert!(
        v.message.contains("thread::sleep") && v.message.contains("WalInner"),
        "unexpected message: {}",
        v.message
    );
}

#[test]
fn bare_ordering_fixture_reports_exactly_one_finding() {
    let rel = "crates/fixture/src/bare_ordering.rs";
    let (violations, _) = lint::analyze_sources(&[(rel, BARE_ORDERING)]);

    assert_eq!(violations.len(), 1, "exactly one finding: {violations:#?}");
    let v = &violations[0];
    assert_eq!(v.rule, "atomic-ordering");
    assert_eq!(v.file, rel);
    assert_eq!(v.line, 8);
}

/// The fixture trio analyzed together still yields exactly three
/// findings, sorted by (file, line, rule) — the deterministic output
/// order ci.sh depends on.
#[test]
fn combined_fixtures_sort_deterministically() {
    let (violations, _) = lint::analyze_sources(&[
        ("crates/fixture/src/guard_sleep.rs", GUARD_SLEEP),
        ("crates/fixture/src/abba.rs", ABBA),
        ("crates/fixture/src/bare_ordering.rs", BARE_ORDERING),
    ]);
    let got: Vec<(&str, usize, &str)> = violations
        .iter()
        .map(|v| (v.file.as_str(), v.line, v.rule))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/fixture/src/abba.rs", 24, "lock-graph"),
            ("crates/fixture/src/bare_ordering.rs", 8, "atomic-ordering"),
            ("crates/fixture/src/guard_sleep.rs", 17, "guard-blocking"),
        ]
    );
}
