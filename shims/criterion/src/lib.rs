//! Offline shim for the subset of `criterion` 0.5 the bench targets use.
//!
//! The build environment has no crates.io access, so the external
//! `criterion` crate is replaced with this minimal harness: each benchmark
//! runs `sample_size` timed batches after a short calibration and prints
//! mean ns/iter to stdout. No statistics, HTML reports, or outlier
//! rejection — enough to keep `cargo bench` useful and the bench targets
//! compiling under `clippy --all-targets`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const CALIBRATION_TARGET: Duration = Duration::from_millis(20);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes a perceptible
        // amount of time, so per-iteration timer overhead is amortized.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= CALIBRATION_TARGET || n >= 1 << 20 {
                self.iters_per_sample = n;
                break;
            }
            n = n.saturating_mul(2);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let iters = b.iters_per_sample * b.samples.len() as u64;
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    let min_ns = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .fold(f64::INFINITY, f64::min);
    println!("{name:<48} mean {mean_ns:>12.1} ns/iter   best {min_ns:>12.1} ns/iter");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
