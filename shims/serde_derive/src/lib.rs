//! Offline shim for `serde_derive`: the workspace derives
//! `Serialize`/`Deserialize` purely as forward-looking markers (nothing is
//! actually serialized — the bench harness writes CSV by hand), so the
//! derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
