//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the external `rand`
//! crate is replaced with this local implementation: a xoshiro256**
//! generator seeded via SplitMix64 (the same construction real
//! `rand::rngs::StdRng` documentation permits — the algorithm is
//! unspecified and may change), plus the `Rng`, `SeedableRng`, and
//! `SliceRandom` trait surface actually referenced by the workspace.
//! Deterministic for a given seed, which is all the workload generator and
//! property tests require.

use std::ops::Range;

// ------------------------------------------------------------- RngCore --

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

// ----------------------------------------------------------------- Rng --

/// Uniform sampling from a range, for the integer types the workspace uses.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % width) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Types a generator can produce directly via `Rng::gen`.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Slices `Rng::fill` can populate.
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::standard(self) < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ----------------------------------------------------------------- seq --

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!((0..10_000).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
