//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no crates.io access, so the external
//! `proptest` crate is replaced by this local implementation. It keeps the
//! same test-author surface (`proptest!`, `prop_oneof!`, `Strategy`,
//! `any`, `Just`, `collection::vec`, `ProptestConfig`, `prop_assert*`) but
//! generates values with a deterministic SplitMix64 stream and performs
//! **no shrinking**: a failing case reports the generated inputs via the
//! panic message (the strategies' `Debug` values) instead of a minimized
//! counterexample. Each test function derives its seed from its own name,
//! so runs are reproducible.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    /// Deterministic generator backing all strategies: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test-name hash and case index, so every test and
        /// every case gets an independent, reproducible stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for b in name.as_bytes() {
                h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::Arc;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree and no shrinking: `generate` produces a value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof requires a positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for super::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(width) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::PhantomData;

    /// Types `any::<T>()` can produce.
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, a..b)`: a vector whose length is uniform in `[a, b)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-definition macro. Each generated `fn` runs `config.cases`
/// deterministic cases; on panic the failing inputs are printed (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __described = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:\n{}",
                            case + 1, config.cases, stringify!($name), __described
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        let strat = crate::collection::vec(3usize..9, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..9).contains(x)));
        }
    }

    #[test]
    fn union_respects_zero_weight_path() {
        let mut rng = crate::test_runner::TestRng::for_case("union", 0);
        let strat = prop_oneof![4 => Just(1u8), 1 => Just(2u8)];
        let mut saw = [false; 3];
        for _ in 0..200 {
            saw[strat.generate(&mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }
}
