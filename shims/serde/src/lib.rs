//! Offline shim for the subset of `serde` this workspace uses: the
//! `Serialize`/`Deserialize` trait names and their derive macros. The
//! workspace never serializes anything (CSV is written by hand in
//! `bench::report`), so the traits are empty markers and the derives
//! expand to nothing. Replace with real serde when a registry is
//! available and an actual wire format is needed.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
