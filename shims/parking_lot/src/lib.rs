//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! `parking_lot` crate is replaced by this local implementation over
//! `std::sync`. Semantics preserved from parking_lot:
//!
//! - `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards
//!   directly (no `Result`); a poisoned std lock is recovered, matching
//!   parking_lot's absence of poisoning.
//! - `Condvar::wait*` take `&mut MutexGuard` instead of consuming the
//!   guard, and `wait_until` takes an `Instant` deadline.
//!
//! Only the API surface actually referenced by the workspace is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex --

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// --------------------------------------------------------------- RwLock --

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// -------------------------------------------------------------- Condvar --

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the std guard held inside `slot`, replacing it with the guard
/// `f` returns. The guard is moved out by value because `std::sync::Condvar`
/// consumes and returns guards, while the parking_lot API mutates in place.
///
/// Safety: `f` must not panic between taking and returning the guard, or the
/// guard would be dropped twice. The only closures passed here call
/// `Condvar::wait{,_timeout}` and recover poisoning, which do not panic.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    unsafe {
        let taken = std::ptr::read(&slot.inner);
        let fresh = f(taken);
        std::ptr::write(&mut slot.inner, fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
