#!/bin/sh
# Flame-graph helper for the hot paths this repo optimizes (allocator,
# wave executor): wraps `perf record` around any command and leaves a
# perf.data + folded-stack report next to it.
#
# Usage:
#   ./flamegraph.sh cargo run -p bench --release --bin paper_figures -- trajectory --quick
#   ./flamegraph.sh target/release/paper_figures mpl --quick
#
# Output goes to flamegraph.out/ (git-ignored):
#   perf.data      — raw samples (open with `perf report`)
#   folded.txt     — collapsed stacks, one line per unique stack, ready to
#                    feed to any flamegraph renderer (e.g. flamegraph.pl)
#
# Degrades gracefully: when `perf` is not installed (the common case in
# minimal containers), prints what it *would* have run and executes the
# command unprofiled, so scripts can call it unconditionally.
set -eu

if [ "$#" -eq 0 ]; then
    echo "usage: $0 <command> [args...]" >&2
    exit 2
fi

if ! command -v perf >/dev/null 2>&1; then
    echo "flamegraph.sh: 'perf' not found; running unprofiled: $*" >&2
    exec "$@"
fi

OUT_DIR=${FLAMEGRAPH_OUT:-flamegraph.out}
mkdir -p "$OUT_DIR"

# 997 Hz (prime, avoids lockstep with periodic work), DWARF unwinding for
# good Rust stacks without requiring frame pointers.
perf record -F 997 --call-graph dwarf -o "$OUT_DIR/perf.data" -- "$@"

# Collapse to folded stacks if perf script works here; keep going on
# failure — perf.data alone is already useful.
if perf script -i "$OUT_DIR/perf.data" >"$OUT_DIR/script.txt" 2>/dev/null; then
    # Minimal folder: count identical ";"-joined stacks. Equivalent to
    # stackcollapse-perf.pl for the common single-event case.
    awk '
        /^\S/ { comm = $1; next }
        /^\s+[0-9a-f]+/ {
            # frame lines: "addr symbol (dso)"
            sym = $2
            if (sym == "[unknown]") next
            stack = (stack == "" ? sym : sym ";" stack)
            next
        }
        /^$/ {
            if (stack != "") { counts[comm ";" stack]++ }
            stack = ""
        }
        END { for (s in counts) print s, counts[s] }
    ' "$OUT_DIR/script.txt" | sort >"$OUT_DIR/folded.txt"
    rm -f "$OUT_DIR/script.txt"
    echo "flamegraph.sh: wrote $OUT_DIR/perf.data and $OUT_DIR/folded.txt" >&2
else
    echo "flamegraph.sh: wrote $OUT_DIR/perf.data (perf script unavailable)" >&2
fi
