//! Umbrella crate for the SIGMOD 2000 "On-line Reorganization in Object
//! Databases" reproduction. Re-exports the three library crates so the
//! examples and integration tests have a single import root.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use brahma;
pub use ira;
pub use obs;
pub use workload;
